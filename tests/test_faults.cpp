// Fault-injection suite (ctest label: faults). Only built when the
// NUFFT_FAULT_INJECT CMake option compiles the hooks in (common/fault.hpp);
// each test arms a named site and checks that the library degrades, retries,
// or fails with the documented ErrorCode instead of crashing or caching a
// broken state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "exec/batch_nufft.hpp"
#include "exec/engine.hpp"
#include "exec/plan_registry.hpp"
#include "test_util.hpp"

static_assert(nufft::fault::enabled(),
              "test_faults.cpp requires -DNUFFT_FAULT_INJECT=ON");

namespace nufft {
namespace {

using datasets::TrajectoryType;
using exec::BatchNufft;
using exec::NufftEngine;
using exec::PlanRegistry;

constexpr index_t kBatch = 4;

struct Fixture {
  GridDesc g;
  datasets::SampleSet set;
  std::vector<cvecf> images;
  std::vector<cvecf> raws;
};

Fixture make_fixture(int dim = 2) {
  Fixture f;
  const index_t n = dim == 3 ? 12 : 20;
  f.g = make_grid(dim, n, 2.0);
  f.set = testing::small_trajectory(TrajectoryType::kRadial, dim, n, 400);
  for (index_t b = 0; b < kBatch; ++b) {
    f.images.push_back(testing::random_image(f.g.image_elems(), 100 + b));
    f.raws.push_back(testing::random_raw(f.set.count(), 200 + b));
  }
  return f;
}

bool bitwise_equal(const cfloat* a, const cfloat* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(cfloat)) == 0;
}

// Every test starts and ends with all sites disarmed, so an armed trigger
// can never leak across tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

// --- PlanRegistry ----------------------------------------------------------

TEST_F(FaultTest, RegistryBuildFaultNeverCaches) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;

  fault::arm("registry.build", 1);
  try {
    registry.acquire(f.g, f.set, cfg);
    FAIL() << "expected injected build failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBuildFailure);
  }
  EXPECT_EQ(registry.resident_count(), 0u);
  EXPECT_EQ(registry.stats().build_failures, 1u);

  // The trigger is consumed: the next acquire of the same key rebuilds.
  EXPECT_NE(registry.acquire(f.g, f.set, cfg), nullptr);
  EXPECT_EQ(registry.resident_count(), 1u);
}

TEST_F(FaultTest, SingleFlightWaitersObserveInjectedFault) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;

  fault::arm("registry.build", 1);
  constexpr int kRequesters = 6;
  std::atomic<int> failed{0}, succeeded{0};
  {
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int t = 0; t < kRequesters; ++t) {
      threads.emplace_back([&] {
        ++ready;
        while (ready.load() < kRequesters) std::this_thread::yield();
        try {
          if (registry.acquire(f.g, f.set, cfg) != nullptr) ++succeeded;
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kBuildFailure);
          ++failed;
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  // Exactly one build consumed the trigger; its own requester and every
  // single-flight waiter of that attempt saw the error, later requesters
  // rebuilt cleanly.
  EXPECT_GE(failed.load(), 1);
  EXPECT_EQ(failed.load() + succeeded.load(), kRequesters);
  EXPECT_EQ(fault::fired("registry.build"), 1u);
  // Whatever the interleaving, the registry ends usable.
  EXPECT_NE(registry.acquire(f.g, f.set, cfg), nullptr);
}

TEST_F(FaultTest, CorruptSpillFallsBackToRebuildBitIdentically) {
  Fixture f = make_fixture();
  const auto set2 = testing::small_trajectory(TrajectoryType::kSpiral, 2, f.g.n[0], 400);
  PlanConfig cfg;
  cfg.threads = 1;

  const auto dir = std::filesystem::temp_directory_path() / "nufft_fault_spill_test";
  std::filesystem::remove_all(dir);
  exec::RegistryConfig rc;
  rc.max_bytes = 1;  // every second plan forces an eviction
  rc.spill_dir = dir.string();
  PlanRegistry registry(rc);

  cvecf ref(static_cast<std::size_t>(f.set.count()));
  {
    const auto plan_a = registry.acquire(f.g, f.set, cfg);
    Workspace ws = plan_a->make_workspace();
    ThreadPool pool(1);
    plan_a->forward(f.images[0].data(), ref.data(), ws, pool);
  }

  // Evicting A writes the spill file, then the armed site corrupts it.
  fault::arm("registry.spill.corrupt", 1);
  registry.acquire(f.g, set2, cfg);
  EXPECT_EQ(fault::fired("registry.spill.corrupt"), 1u);

  // Restoring A detects the corruption, deletes the file, and rebuilds —
  // with results bit-identical to the original build.
  const auto plan_a2 = registry.acquire(f.g, f.set, cfg);
  const auto st = registry.stats();
  EXPECT_EQ(st.corrupt_spills, 1u);
  EXPECT_EQ(st.spill_restores, 0u);
  cvecf got(static_cast<std::size_t>(f.set.count()));
  Workspace ws = plan_a2->make_workspace();
  ThreadPool pool(1);
  plan_a2->forward(f.images[0].data(), got.data(), ws, pool);
  EXPECT_TRUE(bitwise_equal(got.data(), ref.data(), f.set.count()));

  std::filesystem::remove_all(dir);
}

TEST_F(FaultTest, EnvSpecArmsSites) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;

  ::setenv("NUFFT_FAULT", "registry.build:1", 1);
  fault::reset();  // re-read the environment on the next hit
  EXPECT_THROW(registry.acquire(f.g, f.set, cfg), Error);
  ::unsetenv("NUFFT_FAULT");
  fault::reset();
  EXPECT_NE(registry.acquire(f.g, f.set, cfg), nullptr);
}

// --- NufftEngine -----------------------------------------------------------

TEST_F(FaultTest, ApplyFaultDoesNotPoisonLeases) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);

  cvecf ref(static_cast<std::size_t>(f.set.count()));
  {
    Workspace ws = plan->make_workspace();
    ThreadPool pool(1);
    plan->forward(f.images[0].data(), ref.data(), ws, pool);
  }

  exec::EngineConfig ec;
  ec.workers = 1;  // one worker ⇒ the retry job reuses the returned lease
  NufftEngine engine(ec);
  cvecf got(static_cast<std::size_t>(f.set.count()));

  fault::arm("engine.apply", 1);
  auto doomed = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data());
  try {
    doomed.get();
    FAIL() << "expected injected apply failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }

  // The lease returned on the failure path serves the next job unharmed.
  auto ok = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data());
  ok.get();
  EXPECT_TRUE(bitwise_equal(got.data(), ref.data(), f.set.count()));
}

TEST_F(FaultTest, TransientFaultIsRetriedWithinBudget) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);
  cvecf ref(static_cast<std::size_t>(f.set.count()));
  {
    Workspace ws = plan->make_workspace();
    ThreadPool pool(1);
    plan->forward(f.images[0].data(), ref.data(), ws, pool);
  }

  NufftEngine engine;
  cvecf got(static_cast<std::size_t>(f.set.count()));
  exec::JobOptions opts;
  opts.max_retries = 3;
  opts.retry_backoff = std::chrono::milliseconds{1};

  fault::arm("engine.apply.transient", 2);  // fail twice, succeed third
  auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data(), 1, opts);
  fut.get();
  EXPECT_EQ(fault::fired("engine.apply.transient"), 2u);
  EXPECT_TRUE(bitwise_equal(got.data(), ref.data(), f.set.count()));
}

TEST_F(FaultTest, RetryBudgetExhaustionSurfacesResourceExhausted) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);

  NufftEngine engine;
  cvecf got(static_cast<std::size_t>(f.set.count()));
  exec::JobOptions opts;
  opts.max_retries = 1;
  opts.retry_backoff = std::chrono::milliseconds{1};

  fault::arm("engine.apply.transient", 5);  // outlasts the retry budget
  auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data(), 1, opts);
  try {
    fut.get();
    FAIL() << "expected retry budget exhaustion";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
  // First attempt + one retry.
  EXPECT_EQ(fault::fired("engine.apply.transient"), 2u);
}

// --- Engine watchdog --------------------------------------------------------

TEST_F(FaultTest, WatchdogResolvesHungJobAndQuarantinesThePlan) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;
  const auto plan = registry.acquire(f.g, f.set, cfg);

  exec::EngineConfig ec;
  ec.workers = 1;
  ec.stall_threshold = std::chrono::milliseconds(50);
  ec.watchdog_poll = std::chrono::milliseconds(5);
  ec.watchdog_registry = &registry;
  NufftEngine engine(ec);

  cvecf got(static_cast<std::size_t>(f.set.count()));
  fault::arm("engine.apply.stall", 1, 0, /*stall ms=*/400);
  auto hung = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data());
  try {
    hung.get();
    FAIL() << "expected watchdog timeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }

  // The future resolves before the watchdog finishes its bookkeeping
  // (quarantine, replacement worker) — poll briefly instead of racing it.
  exec::WatchdogStats wd;
  for (int i = 0; i < 500; ++i) {
    wd = engine.watchdog_stats();
    if (wd.quarantines >= 1 && wd.replacements >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(wd.stalls, 1u);
  EXPECT_EQ(wd.quarantines, 1u);
  EXPECT_EQ(wd.replacements, 1u);

  // The stalled plan is quarantined: re-acquiring its key fails fast instead
  // of handing the next job the same hazard.
  try {
    registry.acquire(f.g, f.set, cfg);
    FAIL() << "expected quarantine rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  EXPECT_GE(registry.stats().watchdog_quarantines, 1u);

  // Capacity survived the wedged thread: the replacement worker serves the
  // next job while the expelled one is still asleep inside the stall.
  const auto set2 = testing::small_trajectory(TrajectoryType::kSpiral, 2, f.g.n[0], 400);
  auto plan2 = std::make_shared<const Nufft>(f.g, set2, cfg);
  cvecf out2(static_cast<std::size_t>(set2.count()));
  engine.submit(exec::Op::kForward, plan2, f.images[0].data(), out2.data()).get();
  EXPECT_EQ(engine.workers(), 2);  // original (wedged) + replacement

  // When the stall finally returns, the claimed job counts as a late
  // completion — the apply ran against keepalive-pinned buffers to the end.
  for (int i = 0; i < 500 && engine.watchdog_stats().late_completions == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.watchdog_stats().late_completions, 1u);
}

// --- Runtime fault configuration --------------------------------------------

TEST_F(FaultTest, DeterministicSpecSkipsThenFires) {
  fault::arm("chaos.skip", 2, /*skip=*/3);
  int hits = 0;
  for (int i = 0; i < 10; ++i) {
    if (fault::should_fail("chaos.skip")) ++hits;
  }
  EXPECT_EQ(hits, 2);  // three clean passes, two injected failures, then done
  EXPECT_EQ(fault::fired("chaos.skip"), 2u);
}

TEST_F(FaultTest, ProbabilisticSpecHonoursBudget) {
  fault::arm_prob("chaos.always", 1.0, /*budget=*/3);
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    if (fault::should_fail("chaos.always")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fault::fired_total(), 3u);
}

TEST_F(FaultTest, EnvProbSpecArmsSites) {
  ::setenv("NUFFT_FAULT", "env.prob:p1.0:2", 1);
  ::setenv("NUFFT_FAULT_SEED", "123", 1);
  fault::reset();  // re-read the environment on the next hit
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    if (fault::should_fail("env.prob")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  ::unsetenv("NUFFT_FAULT");
  ::unsetenv("NUFFT_FAULT_SEED");
  fault::reset();
}

// --- BatchNufft graceful degradation ---------------------------------------

TEST_F(FaultTest, SimdAllocFailureDegradesToScalarWithinTolerance) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.use_simd = true;
  cfg.isa = SimdIsa::kSse;
  cfg.threads = 1;
  Nufft plan(f.g, f.set, cfg);

  std::vector<cvecf> ref(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  for (index_t b = 0; b < kBatch; ++b) plan.forward(f.images[b].data(), ref[b].data());

  BatchNufft batch(plan, kBatch);
  EXPECT_FALSE(batch.simd_downgraded());
  std::vector<const cfloat*> in;
  std::vector<cfloat*> out;
  std::vector<cvecf> got(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  for (index_t b = 0; b < kBatch; ++b) {
    in.push_back(f.images[b].data());
    out.push_back(got[b].data());
  }

  fault::arm("batch.simd_alloc", 1);
  batch.forward(in.data(), out.data(), kBatch);
  EXPECT_EQ(fault::fired("batch.simd_alloc"), 1u);
  EXPECT_TRUE(batch.simd_downgraded());
  EXPECT_TRUE(batch.last_forward_stats().simd_downgraded);
  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_LT(testing::rel_err(got[b].data(), ref[b].data(), f.set.count()), 1e-5)
        << "slice " << b;
  }

  // The downgrade is sticky and the instance stays serviceable.
  std::vector<cvecf> aref(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) plan.adjoint(f.raws[b].data(), aref[b].data());
  std::vector<const cfloat*> rin;
  std::vector<cfloat*> iout;
  std::vector<cvecf> agot(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) {
    rin.push_back(f.raws[b].data());
    iout.push_back(agot[b].data());
  }
  batch.adjoint(rin.data(), iout.data(), kBatch);
  EXPECT_TRUE(batch.last_adjoint_stats().simd_downgraded);
  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_LT(testing::rel_err(agot[b].data(), aref[b].data(), f.g.image_elems()), 1e-5)
        << "slice " << b;
  }
}

TEST_F(FaultTest, PrivateBufferAllocFailureFallsBackToDirectScatter) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.use_simd = false;
  cfg.threads = 2;
  Nufft plan(f.g, f.set, cfg);

  std::vector<cvecf> ref(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) plan.adjoint(f.raws[b].data(), ref[b].data());

  fault::arm("batch.private_alloc", 1);
  BatchNufft batch(plan, kBatch);
  EXPECT_EQ(fault::fired("batch.private_alloc"), 1u);
  EXPECT_TRUE(batch.privatization_downgraded());

  std::vector<const cfloat*> in;
  std::vector<cfloat*> out;
  std::vector<cvecf> got(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) {
    in.push_back(f.raws[b].data());
    out.push_back(got[b].data());
  }
  batch.adjoint(in.data(), out.data(), kBatch);
  EXPECT_TRUE(batch.last_adjoint_stats().privatization_downgraded);
  EXPECT_EQ(batch.last_adjoint_stats().privatized_tasks, 0);
  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_LT(testing::rel_err(got[b].data(), ref[b].data(), f.g.image_elems()), 1e-5)
        << "slice " << b;
  }
}

}  // namespace
}  // namespace nufft
