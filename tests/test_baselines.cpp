// Tests for the baseline implementations: the direct NUDFT oracle's own
// self-consistency, atomic and privatized spreads vs the scheduler spread,
// and the Shu-style ReferenceNufft vs the optimized operator.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adjoint_atomic.hpp"
#include "baselines/adjoint_privatized.hpp"
#include "baselines/nudft.hpp"
#include "baselines/reference_nufft.hpp"
#include "core/nufft.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "test_util.hpp"

namespace nufft::baselines {
namespace {

using datasets::TrajectoryType;

TEST(Nudft, ForwardAdjointDotTestExact) {
  // The direct transforms are exact adjoints of each other by construction;
  // verify in double precision.
  const GridDesc g = make_grid(2, 8, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 8, 60);
  const cvecf x = testing::random_image(g.image_elems(), 1);
  const cvecf y = testing::random_raw(set.count(), 2);
  ThreadPool pool(2);

  std::vector<cdouble> ax(static_cast<std::size_t>(set.count()));
  std::vector<cdouble> aty(static_cast<std::size_t>(g.image_elems()));
  nudft_forward(g, set, x.data(), ax.data(), pool);
  nudft_adjoint(g, set, y.data(), aty.data(), pool);

  cdouble lhs(0, 0), rhs(0, 0);
  for (index_t i = 0; i < set.count(); ++i) {
    lhs += ax[static_cast<std::size_t>(i)] *
           std::conj(cdouble(y[static_cast<std::size_t>(i)].real(), y[static_cast<std::size_t>(i)].imag()));
  }
  for (index_t i = 0; i < g.image_elems(); ++i) {
    rhs += cdouble(x[static_cast<std::size_t>(i)].real(), x[static_cast<std::size_t>(i)].imag()) *
           std::conj(aty[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 1e-12);
}

TEST(Nudft, OnGridSampleMatchesChoppedDft) {
  // A sample exactly at w = M/2 (DC) must return the plain image sum.
  const GridDesc g = make_grid(1, 8, 2.0);
  datasets::SampleSet set;
  set.dim = 1;
  set.m = 16;
  set.k = 1;
  set.s = 1;
  set.coords[0] = {8.0f};
  const cvecf x = testing::random_image(8, 3);
  ThreadPool pool(1);
  std::vector<cdouble> out(1);
  nudft_forward(g, set, x.data(), out.data(), pool);
  cdouble sum(0, 0);
  for (const auto& v : x) sum += cdouble(v.real(), v.imag());
  EXPECT_LT(std::abs(out[0] - sum), 1e-12);
}

struct SpreadCase {
  int dim;
  TrajectoryType type;
  int threads;
};

class SpreadEquivalence : public ::testing::TestWithParam<SpreadCase> {};

TEST_P(SpreadEquivalence, AtomicMatchesScheduler) {
  const auto [dim, type, threads] = GetParam();
  const index_t N = dim == 3 ? 12 : 32;
  const GridDesc g = make_grid(dim, N, 2.0);
  const auto set = testing::small_trajectory(type, dim, N, 2000);
  const cvecf raw = testing::random_raw(set.count(), 7);

  PlanConfig cfg;
  cfg.threads = threads;
  Nufft plan(g, set, cfg);
  plan.spread(raw.data());

  const auto kb = kernels::KaiserBessel::with_beatty_beta(4.0, 2.0);
  const kernels::KernelLut lut(kb, 1024);
  cvecf grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  ThreadPool pool(threads);
  spread_atomic(g, lut, set, raw.data(), grid.data(), pool);

  // Different addition order → rounding-level agreement.
  EXPECT_LT(testing::max_abs_diff(grid.data(), plan.grid_data(), g.grid_elems()), 2e-4);
}

TEST_P(SpreadEquivalence, PrivatizedMatchesScheduler) {
  const auto [dim, type, threads] = GetParam();
  const index_t N = dim == 3 ? 12 : 32;
  const GridDesc g = make_grid(dim, N, 2.0);
  const auto set = testing::small_trajectory(type, dim, N, 2000);
  const cvecf raw = testing::random_raw(set.count(), 8);

  PlanConfig cfg;
  cfg.threads = threads;
  Nufft plan(g, set, cfg);
  plan.spread(raw.data());

  const auto kb = kernels::KaiserBessel::with_beatty_beta(4.0, 2.0);
  const kernels::KernelLut lut(kb, 1024);
  cvecf grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  ThreadPool pool(threads);
  spread_privatized(g, lut, set, raw.data(), grid.data(), pool);

  EXPECT_LT(testing::max_abs_diff(grid.data(), plan.grid_data(), g.grid_elems()), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpreadEquivalence,
    ::testing::Values(SpreadCase{1, TrajectoryType::kRandom, 4},
                      SpreadCase{2, TrajectoryType::kRadial, 1},
                      SpreadCase{2, TrajectoryType::kRandom, 4},
                      SpreadCase{2, TrajectoryType::kSpiral, 8},
                      SpreadCase{3, TrajectoryType::kRadial, 4},
                      SpreadCase{3, TrajectoryType::kRandom, 2}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.dim) + "_" +
             datasets::trajectory_name(info.param.type) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(ReferenceNufft, MatchesOptimizedForward) {
  const GridDesc g = make_grid(3, 12, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 3, 12, 800);
  const cvecf img = testing::random_image(g.image_elems(), 9);

  PlanConfig cfg;
  cfg.threads = 4;
  Nufft fast(g, set, cfg);
  ReferenceNufft ref(g, set, 4.0, 4);

  cvecf raw_fast(static_cast<std::size_t>(set.count()));
  cvecf raw_ref(static_cast<std::size_t>(set.count()));
  fast.forward(img.data(), raw_fast.data());
  ref.forward(img.data(), raw_ref.data());
  EXPECT_LT(testing::rel_err(raw_fast.data(), raw_ref.data(), set.count()), 1e-4);
}

TEST(ReferenceNufft, MatchesOptimizedAdjoint) {
  const GridDesc g = make_grid(3, 12, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kSpiral, 3, 12, 800);
  const cvecf raw = testing::random_raw(set.count(), 10);

  PlanConfig cfg;
  cfg.threads = 4;
  Nufft fast(g, set, cfg);
  ReferenceNufft ref(g, set, 4.0, 4);

  cvecf img_fast(static_cast<std::size_t>(g.image_elems()));
  cvecf img_ref(static_cast<std::size_t>(g.image_elems()));
  fast.adjoint(raw.data(), img_fast.data());
  ref.adjoint(raw.data(), img_ref.data());
  EXPECT_LT(testing::rel_err(img_fast.data(), img_ref.data(), g.image_elems()), 1e-4);
}

TEST(ReferenceNufft, SingleThreadDegeneratesToSequential) {
  const GridDesc g = make_grid(2, 24, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 24, 500);
  const cvecf raw = testing::random_raw(set.count(), 11);
  ReferenceNufft a(g, set, 4.0, 1);
  ReferenceNufft b(g, set, 4.0, 3);
  cvecf ia(static_cast<std::size_t>(g.image_elems()));
  cvecf ib(static_cast<std::size_t>(g.image_elems()));
  a.adjoint(raw.data(), ia.data());
  b.adjoint(raw.data(), ib.data());
  EXPECT_LT(testing::rel_err(ia.data(), ib.data(), g.image_elems()), 1e-4);
}

}  // namespace
}  // namespace nufft::baselines
