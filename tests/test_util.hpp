// Shared helpers for the test suite.
#pragma once

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/grid.hpp"
#include "datasets/trajectory.hpp"

namespace nufft::testing {

/// Uniform random complex image in [-1,1]².
cvecf random_image(index_t n, std::uint64_t seed);

/// Uniform random complex sample values.
cvecf random_raw(index_t n, std::uint64_t seed);

/// Relative L2 error ‖a − b‖/‖b‖ for float-vs-double comparisons.
double rel_err(const cfloat* a, const cdouble* b, index_t n);
double rel_err(const cfloat* a, const cfloat* b, index_t n);

/// Maximum absolute element difference.
double max_abs_diff(const cfloat* a, const cfloat* b, index_t n);

/// Small trajectory for correctness tests: ~count samples of the given type.
datasets::SampleSet small_trajectory(datasets::TrajectoryType type, int dim, index_t n,
                                     index_t approx_count, std::uint64_t seed = 99);

}  // namespace nufft::testing
