// Tests for the AVX2 (8-wide FMA) convolution extension. All tests skip on
// CPUs without AVX2+FMA.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/convolution.hpp"
#include "core/convolution_avx2.hpp"
#include "core/nufft.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using kernels::KaiserBessel;
using kernels::KernelLut;

#define SKIP_WITHOUT_AVX2()                              \
  if (!avx2_available()) {                               \
    GTEST_SKIP() << "CPU does not support AVX2 + FMA";   \
  }

class Avx2Kernels : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Avx2Kernels, ScatterMatchesSse) {
  SKIP_WITHOUT_AVX2();
  const auto [dim, W] = GetParam();
  const GridDesc g = make_grid(dim, 24, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  Rng rng(2024);

  cvecf a(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  cvecf b(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  for (int trial = 0; trial < 40; ++trial) {
    float coord[3];
    for (int d = 0; d < dim; ++d) coord[d] = static_cast<float>(rng.uniform(0.0, 48.0));
    const cfloat val(static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1)));
    WindowBuf wb;
    compute_window(g, lut, coord, dim, true, wb);
    switch (dim) {
      case 1:
        adj_scatter_simd<1>(a.data(), st, wb, val);
        adj_scatter_avx2<1>(b.data(), st, wb, val);
        break;
      case 2:
        adj_scatter_simd<2>(a.data(), st, wb, val);
        adj_scatter_avx2<2>(b.data(), st, wb, val);
        break;
      default:
        adj_scatter_simd<3>(a.data(), st, wb, val);
        adj_scatter_avx2<3>(b.data(), st, wb, val);
        break;
    }
  }
  // FMA contraction changes rounding; agreement is to tolerance.
  EXPECT_LT(testing::max_abs_diff(a.data(), b.data(), g.grid_elems()), 1e-5);
}

TEST_P(Avx2Kernels, GatherMatchesSse) {
  SKIP_WITHOUT_AVX2();
  const auto [dim, W] = GetParam();
  const GridDesc g = make_grid(dim, 24, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  const cvecf grid = testing::random_image(g.grid_elems(), 55);
  Rng rng(2025);

  for (int trial = 0; trial < 40; ++trial) {
    float coord[3];
    for (int d = 0; d < dim; ++d) coord[d] = static_cast<float>(rng.uniform(0.0, 48.0));
    WindowBuf wb;
    compute_window(g, lut, coord, dim, true, wb);
    cfloat s, v;
    switch (dim) {
      case 1:
        s = fwd_gather_simd<1>(grid.data(), st, wb);
        v = fwd_gather_avx2<1>(grid.data(), st, wb);
        break;
      case 2:
        s = fwd_gather_simd<2>(grid.data(), st, wb);
        v = fwd_gather_avx2<2>(grid.data(), st, wb);
        break;
      default:
        s = fwd_gather_simd<3>(grid.data(), st, wb);
        v = fwd_gather_avx2<3>(grid.data(), st, wb);
        break;
    }
    ASSERT_NEAR(std::abs(s - v), 0.0, 1e-4 * (1.0 + std::abs(s)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Avx2Kernels,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2.0, 4.0, 8.0)),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) + "_W" +
                                  std::to_string(static_cast<int>(std::get<1>(info.param)));
                         });

TEST(Avx2Plan, EndToEndMatchesSsePlan) {
  SKIP_WITHOUT_AVX2();
  const GridDesc g = make_grid(3, 12, 2.0);
  const auto set =
      testing::small_trajectory(datasets::TrajectoryType::kRadial, 3, 12, 600);
  const cvecf img = testing::random_image(g.image_elems(), 77);
  const cvecf raw = testing::random_raw(set.count(), 78);

  PlanConfig sse_cfg;
  sse_cfg.threads = 3;
  sse_cfg.isa = SimdIsa::kSse;
  PlanConfig avx_cfg = sse_cfg;
  avx_cfg.isa = SimdIsa::kAvx2;

  Nufft sse(g, set, sse_cfg);
  Nufft avx(g, set, avx_cfg);
  EXPECT_EQ(avx.conv_mode(), Nufft::ConvMode::kAvx2);

  cvecf raw_a(raw.size()), raw_b(raw.size());
  sse.forward(img.data(), raw_a.data());
  avx.forward(img.data(), raw_b.data());
  EXPECT_LT(testing::rel_err(raw_a.data(), raw_b.data(), set.count()), 1e-5);

  cvecf img_a(img.size()), img_b(img.size());
  sse.adjoint(raw.data(), img_a.data());
  avx.adjoint(raw.data(), img_b.data());
  EXPECT_LT(testing::rel_err(img_a.data(), img_b.data(), g.image_elems()), 1e-5);
}

TEST(Avx2Plan, AutoSelectsWidestAvailable) {
  const GridDesc g = make_grid(2, 16, 2.0);
  const auto set = testing::small_trajectory(datasets::TrajectoryType::kRandom, 2, 16, 100);
  PlanConfig cfg;
  cfg.isa = SimdIsa::kAuto;
  Nufft plan(g, set, cfg);
  if (avx2_available()) {
    EXPECT_EQ(plan.conv_mode(), Nufft::ConvMode::kAvx2);
  } else {
    EXPECT_EQ(plan.conv_mode(), Nufft::ConvMode::kSse);
  }
}

TEST(Avx2Plan, ScalarConfigIgnoresIsa) {
  const GridDesc g = make_grid(2, 16, 2.0);
  const auto set = testing::small_trajectory(datasets::TrajectoryType::kRandom, 2, 16, 100);
  PlanConfig cfg;
  cfg.use_simd = false;
  cfg.isa = SimdIsa::kAuto;
  Nufft plan(g, set, cfg);
  EXPECT_EQ(plan.conv_mode(), Nufft::ConvMode::kScalar);
}

}  // namespace
}  // namespace nufft
