// Tests for the convolution window (Part 1) and gather/scatter kernels
// (Part 2): correctness against a brute-force reference, wrap handling,
// scalar-vs-SIMD agreement (bitwise for the adjoint).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/convolution.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using kernels::KaiserBessel;
using kernels::KernelLut;

// Brute-force reference: scatter val onto every grid cell within radius W of
// the sample (separable product of kernel values), wrapping mod M.
template <int DIM>
void reference_scatter(const GridDesc& g, const KaiserBessel& kb, const float* coord,
                       cfloat val, cfloat* grid) {
  const auto W = kb.radius();
  const auto st = g.grid_strides();
  const auto lo = [&](int d) { return static_cast<index_t>(std::ceil(coord[d] - W)); };
  const auto hi = [&](int d) { return static_cast<index_t>(std::floor(coord[d] + W)); };
  const index_t x0 = lo(0), x1 = hi(0);
  const index_t y0 = DIM >= 2 ? lo(1) : 0, y1 = DIM >= 2 ? hi(1) : 0;
  const index_t z0 = DIM >= 3 ? lo(2) : 0, z1 = DIM >= 3 ? hi(2) : 0;
  for (index_t x = x0; x <= x1; ++x) {
    for (index_t y = y0; y <= y1; ++y) {
      for (index_t z = z0; z <= z1; ++z) {
        double w = kb.value(static_cast<double>(x) - coord[0]);
        if (DIM >= 2) w *= kb.value(static_cast<double>(y) - coord[1]);
        if (DIM >= 3) w *= kb.value(static_cast<double>(z) - coord[2]);
        index_t idx = ((x % g.m[0]) + g.m[0]) % g.m[0] * st[0];
        if (DIM >= 2) idx += ((y % g.m[1]) + g.m[1]) % g.m[1] * st[1];
        if (DIM >= 3) idx += ((z % g.m[2]) + g.m[2]) % g.m[2] * st[2];
        grid[idx] += val * static_cast<float>(w);
      }
    }
  }
}

TEST(Window, LengthAndIndicesForIntegerCoordinate) {
  const GridDesc g = make_grid(1, 32, 2.0);  // M = 64
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 512);
  WindowBuf wb;
  const float coord[1] = {30.0f};
  compute_window(g, lut, coord, 1, false, wb);
  EXPECT_EQ(wb.len[0], 9);  // 2W+1 for integral coordinates
  EXPECT_EQ(wb.start[0], 26);
  for (int i = 0; i < wb.len[0]; ++i) {
    EXPECT_EQ(wb.idx[0][i], 26 + i);
    EXPECT_NEAR(wb.win[0][i], static_cast<float>(kb.value(std::abs(26.0 + i - 30.0))), 2e-5);
  }
  EXPECT_TRUE(wb.inner_contiguous);
}

TEST(Window, FractionalCoordinateHas2WNeighbours) {
  const GridDesc g = make_grid(1, 32, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 512);
  WindowBuf wb;
  const float coord[1] = {30.5f};
  compute_window(g, lut, coord, 1, false, wb);
  EXPECT_EQ(wb.len[0], 8);  // ceil(26.5)=27 .. floor(34.5)=34
  EXPECT_EQ(wb.start[0], 27);
}

TEST(Window, WrapsAroundLowerEdge) {
  const GridDesc g = make_grid(1, 32, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 512);
  WindowBuf wb;
  const float coord[1] = {1.25f};
  compute_window(g, lut, coord, 1, false, wb);
  EXPECT_FALSE(wb.inner_contiguous);
  for (int i = 0; i < wb.len[0]; ++i) {
    ASSERT_GE(wb.idx[0][i], 0);
    ASSERT_LT(wb.idx[0][i], 64);
  }
  // First neighbours wrap to the top of the grid.
  EXPECT_EQ(wb.idx[0][0], 64 + wb.start[0]);
}

TEST(Window, WrapsAroundUpperEdge) {
  const GridDesc g = make_grid(1, 32, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(2.0, 2.0);
  const KernelLut lut(kb, 512);
  WindowBuf wb;
  const float coord[1] = {63.2f};
  compute_window(g, lut, coord, 1, false, wb);
  EXPECT_FALSE(wb.inner_contiguous);
  bool has_wrapped = false;
  for (int i = 0; i < wb.len[0]; ++i) has_wrapped |= wb.idx[0][i] < 4;
  EXPECT_TRUE(has_wrapped);
}

TEST(Window, DupArrayDuplicatesLastDimWeights) {
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 512);
  WindowBuf wb;
  const float coord[3] = {10.3f, 12.7f, 15.1f};
  compute_window(g, lut, coord, 3, true, wb);
  for (int i = 0; i < wb.len[2]; ++i) {
    EXPECT_EQ(wb.win_dup[2 * i], wb.win[2][i]);
    EXPECT_EQ(wb.win_dup[2 * i + 1], wb.win[2][i]);
  }
}

// ---- scatter/gather correctness sweep ----

class ConvCorrectness : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(ConvCorrectness, ScatterMatchesBruteForce) {
  const auto [dim, W, simd] = GetParam();
  const GridDesc g = make_grid(dim, 16, 2.0);  // M = 32
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 2048);
  const auto st = g.grid_strides();
  Rng rng(static_cast<std::uint64_t>(dim * 100 + static_cast<int>(W)));

  for (int trial = 0; trial < 30; ++trial) {
    float coord[3];
    for (int d = 0; d < dim; ++d) {
      coord[d] = static_cast<float>(rng.uniform(0.0, 32.0));  // includes edges → wraps
    }
    const cfloat val(static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1)));

    cvecf got(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
    cvecf want(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));

    WindowBuf wb;
    compute_window(g, lut, coord, dim, simd, wb);
    switch (dim) {
      case 1:
        simd ? adj_scatter_simd<1>(got.data(), st, wb, val)
             : adj_scatter_scalar<1>(got.data(), st, wb, val);
        reference_scatter<1>(g, kb, coord, val, want.data());
        break;
      case 2:
        simd ? adj_scatter_simd<2>(got.data(), st, wb, val)
             : adj_scatter_scalar<2>(got.data(), st, wb, val);
        reference_scatter<2>(g, kb, coord, val, want.data());
        break;
      default:
        simd ? adj_scatter_simd<3>(got.data(), st, wb, val)
             : adj_scatter_scalar<3>(got.data(), st, wb, val);
        reference_scatter<3>(g, kb, coord, val, want.data());
        break;
    }
    // LUT interpolation bounds the error; the geometric placement must agree.
    EXPECT_LT(testing::max_abs_diff(got.data(), want.data(), g.grid_elems()), 2e-5)
        << "trial " << trial;
  }
}

TEST_P(ConvCorrectness, GatherIsAdjointOfScatter) {
  // ⟨scatter(val), grid⟩ = val·conj(gather(grid)) — per-sample adjointness.
  const auto [dim, W, simd] = GetParam();
  const GridDesc g = make_grid(dim, 16, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 2048);
  const auto st = g.grid_strides();
  Rng rng(static_cast<std::uint64_t>(dim * 200 + static_cast<int>(W)));

  cvecf grid = testing::random_image(g.grid_elems(), 4242);

  for (int trial = 0; trial < 20; ++trial) {
    float coord[3];
    for (int d = 0; d < dim; ++d) coord[d] = static_cast<float>(rng.uniform(0.0, 32.0));
    WindowBuf wb;
    compute_window(g, lut, coord, dim, simd, wb);

    cfloat gathered;
    cvecf scattered(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
    const cfloat one(1.0f, 0.0f);
    switch (dim) {
      case 1:
        gathered = simd ? fwd_gather_simd<1>(grid.data(), st, wb)
                        : fwd_gather_scalar<1>(grid.data(), st, wb);
        simd ? adj_scatter_simd<1>(scattered.data(), st, wb, one)
             : adj_scatter_scalar<1>(scattered.data(), st, wb, one);
        break;
      case 2:
        gathered = simd ? fwd_gather_simd<2>(grid.data(), st, wb)
                        : fwd_gather_scalar<2>(grid.data(), st, wb);
        simd ? adj_scatter_simd<2>(scattered.data(), st, wb, one)
             : adj_scatter_scalar<2>(scattered.data(), st, wb, one);
        break;
      default:
        gathered = simd ? fwd_gather_simd<3>(grid.data(), st, wb)
                        : fwd_gather_scalar<3>(grid.data(), st, wb);
        simd ? adj_scatter_simd<3>(scattered.data(), st, wb, one)
             : adj_scatter_scalar<3>(scattered.data(), st, wb, one);
        break;
    }
    cdouble dot(0, 0);
    for (index_t i = 0; i < g.grid_elems(); ++i) {
      dot += cdouble(grid[static_cast<std::size_t>(i)].real(),
                     grid[static_cast<std::size_t>(i)].imag()) *
             cdouble(scattered[static_cast<std::size_t>(i)].real(),
                     scattered[static_cast<std::size_t>(i)].imag());
    }
    EXPECT_NEAR(std::abs(dot - cdouble(gathered.real(), gathered.imag())), 0.0, 1e-4);
  }
}

std::string conv_name(const ::testing::TestParamInfo<std::tuple<int, double, bool>>& info) {
  return "d" + std::to_string(std::get<0>(info.param)) + "_W" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
         (std::get<2>(info.param) ? "_simd" : "_scalar");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvCorrectness,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(2.0, 2.5, 4.0, 6.0),
                       ::testing::Bool()),
    conv_name);

// ---- scalar vs SIMD agreement ----

class ScalarVsSimd : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ScalarVsSimd, AdjointBitwiseIdentical) {
  const auto [dim, W] = GetParam();
  const GridDesc g = make_grid(dim, 24, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  Rng rng(999);

  cvecf a(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  cvecf b(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  for (int trial = 0; trial < 50; ++trial) {
    float coord[3];
    for (int d = 0; d < dim; ++d) coord[d] = static_cast<float>(rng.uniform(0.0, 48.0));
    const cfloat val(static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1)));
    WindowBuf wb;
    compute_window(g, lut, coord, dim, true, wb);
    switch (dim) {
      case 1:
        adj_scatter_scalar<1>(a.data(), st, wb, val);
        adj_scatter_simd<1>(b.data(), st, wb, val);
        break;
      case 2:
        adj_scatter_scalar<2>(a.data(), st, wb, val);
        adj_scatter_simd<2>(b.data(), st, wb, val);
        break;
      default:
        adj_scatter_scalar<3>(a.data(), st, wb, val);
        adj_scatter_simd<3>(b.data(), st, wb, val);
        break;
    }
  }
  for (index_t i = 0; i < g.grid_elems(); ++i) {
    ASSERT_EQ(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]) << "i=" << i;
  }
}

TEST_P(ScalarVsSimd, ForwardAgreesToRounding) {
  const auto [dim, W] = GetParam();
  const GridDesc g = make_grid(dim, 24, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  Rng rng(1001);
  cvecf grid = testing::random_image(g.grid_elems(), 31);

  for (int trial = 0; trial < 50; ++trial) {
    float coord[3];
    for (int d = 0; d < dim; ++d) coord[d] = static_cast<float>(rng.uniform(0.0, 48.0));
    WindowBuf wb;
    compute_window(g, lut, coord, dim, true, wb);
    cfloat s, v;
    switch (dim) {
      case 1:
        s = fwd_gather_scalar<1>(grid.data(), st, wb);
        v = fwd_gather_simd<1>(grid.data(), st, wb);
        break;
      case 2:
        s = fwd_gather_scalar<2>(grid.data(), st, wb);
        v = fwd_gather_simd<2>(grid.data(), st, wb);
        break;
      default:
        s = fwd_gather_scalar<3>(grid.data(), st, wb);
        v = fwd_gather_simd<3>(grid.data(), st, wb);
        break;
    }
    ASSERT_NEAR(std::abs(s - v), 0.0, 1e-4 * (1.0 + std::abs(s)));
  }
}

std::string svs_name(const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
  return "d" + std::to_string(std::get<0>(info.param)) + "_W" +
         std::to_string(static_cast<int>(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScalarVsSimd,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2.0, 4.0, 8.0)),
                         svs_name);

TEST(Window, TinyGridWrapsEveryIndexIntoRange) {
  // Regression: a kernel footprint wider than TWO grid periods
  // (2W+1 = 9 > 2m = 6) used to escape the single-pass ±m wrap and index
  // out of range (silent corruption). The window must now wrap fully
  // mod m, matching the brute-force periodic reference for every
  // coordinate.
  GridDesc g;
  g.dim = 1;
  g.n = {2, 0, 0};
  g.m = {3, 0, 0};
  g.alpha = 1.5;
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 2048);
  const auto st = g.grid_strides();

  for (float k = 0.0f; k < 3.0f; k += 0.23f) {
    const float coord[1] = {k};
    WindowBuf wb;
    compute_window(g, lut, coord, 1, false, wb);
    ASSERT_GT(wb.len[0], 2 * 3) << "k=" << k;  // wider than two grid periods
    for (int i = 0; i < wb.len[0]; ++i) {
      ASSERT_GE(wb.idx[0][i], 0) << "k=" << k << " i=" << i;
      ASSERT_LT(wb.idx[0][i], 3) << "k=" << k << " i=" << i;
    }
    cvecf got(3, cfloat(0, 0));
    cvecf want(3, cfloat(0, 0));
    adj_scatter_scalar<1>(got.data(), st, wb, cfloat(1.0f, -0.5f));
    reference_scatter<1>(g, kb, coord, cfloat(1.0f, -0.5f), want.data());
    EXPECT_LT(testing::max_abs_diff(got.data(), want.data(), 3), 5e-4) << "k=" << k;
  }
}

TEST(Window, TinyGrid2dScatterMatchesPeriodicReference) {
  // Same regression in 2-d with unequal tiny dimensions: m = {3, 7}, both
  // narrower than the W = 4 footprint; neighbours wrap several times.
  GridDesc g;
  g.dim = 2;
  g.n = {2, 3, 0};
  g.m = {3, 7, 0};
  g.alpha = 2.0;
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 2048);
  const auto st = g.grid_strides();
  Rng rng(77);

  for (int trial = 0; trial < 25; ++trial) {
    const float coord[2] = {static_cast<float>(rng.uniform(0.0, 3.0)),
                            static_cast<float>(rng.uniform(0.0, 7.0))};
    WindowBuf wb;
    compute_window(g, lut, coord, 2, false, wb);
    for (int d = 0; d < 2; ++d) {
      for (int i = 0; i < wb.len[d]; ++i) {
        ASSERT_GE(wb.idx[d][i], 0);
        ASSERT_LT(wb.idx[d][i], g.m[static_cast<std::size_t>(d)]);
      }
    }
    cvecf got(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
    cvecf want(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
    adj_scatter_scalar<2>(got.data(), st, wb, cfloat(0.5f, 1.0f));
    reference_scatter<2>(g, kb, coord, cfloat(0.5f, 1.0f), want.data());
    EXPECT_LT(testing::max_abs_diff(got.data(), want.data(), g.grid_elems()), 2e-3)
        << "trial " << trial;
  }
}

TEST(Window, FloatRoundingNeverWidensSupport) {
  // Regression: ceil(k−W)/floor(k+W) evaluated in float can admit a
  // neighbour with |nx − k| > W when k±W rounds across an integer —
  // a 2W+2-wide window that overruns WindowBuf at W = 9.5 and writes one
  // cell past a privatized box. The trimmed window must satisfy the
  // support invariant for every coordinate, including the adversarial
  // nextafter(half-integer) family that triggers the round-to-even case.
  const GridDesc g = make_grid(1, 512, 2.0);  // M = 1024
  for (const double W : {4.0, 6.0, 9.5}) {
    const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
    const KernelLut lut(kb, 1024);
    const auto check = [&](float k) {
      if (!(k >= 0.0f) || k >= 1024.0f) return;
      const float coord[1] = {k};
      WindowBuf wb;
      compute_window(g, lut, coord, 1, false, wb);
      ASSERT_LE(wb.len[0], WindowBuf::kMaxLen) << "W=" << W << " k=" << k;
      ASSERT_LE(wb.len[0], 2 * static_cast<int>(std::ceil(W)) + 1) << "W=" << W << " k=" << k;
      for (int i = 0; i < wb.len[0]; ++i) {
        ASSERT_LE(std::fabs(static_cast<float>(wb.start[0] + i) - k), static_cast<float>(W))
            << "W=" << W << " k=" << k << " i=" << i;
      }
    };
    for (index_t c = 0; c < 1024; c += 3) {
      const float base = static_cast<float>(c);
      for (const float off : {0.0f, 0.5f}) {
        const float k = base + off;
        check(k);
        check(std::nextafterf(k, 0.0f));
        check(std::nextafterf(k, 2048.0f));
      }
    }
    check(std::nextafterf(1024.0f, 0.0f));  // domain boundary
  }
}

TEST(Convolution, EnergyConservedByScatterGatherPair) {
  // gather(scatter(val)) = val·Σ weights² > 0 — sanity of weight handling.
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  WindowBuf wb;
  const float coord[3] = {16.4f, 17.6f, 15.2f};
  compute_window(g, lut, coord, 3, true, wb);
  cvecf grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  adj_scatter_simd<3>(grid.data(), st, wb, cfloat(2.0f, -1.0f));
  const cfloat back = fwd_gather_simd<3>(grid.data(), st, wb);
  double wsum = 0.0;
  for (int x = 0; x < wb.len[0]; ++x) {
    for (int y = 0; y < wb.len[1]; ++y) {
      for (int z = 0; z < wb.len[2]; ++z) {
        const double w = static_cast<double>(wb.win[0][x]) * wb.win[1][y] * wb.win[2][z];
        wsum += w * w;
      }
    }
  }
  EXPECT_NEAR(back.real(), 2.0 * wsum, 1e-3);
  EXPECT_NEAR(back.imag(), -1.0 * wsum, 1e-3);
}

}  // namespace
}  // namespace nufft
