// Tests for chopping (fftshift-by-modulation, paper §II-B).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fft/fft1d.hpp"
#include "fft/shift.hpp"

namespace nufft::fft {
namespace {

cvecd random_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvecd v(n);
  for (auto& x : v) x = cdouble(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

TEST(Chop, TwiceIsIdentity) {
  auto data = random_data(6 * 8, 1);
  auto orig = data;
  chop(data.data(), {6, 8});
  chop(data.data(), {6, 8});
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], orig[i]);
}

TEST(Chop, SignPattern1d) {
  cvecd data(8, cdouble(1, 0));
  chop(data.data(), {8});
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(data[i].real(), (i % 2 == 0) ? 1.0 : -1.0);
  }
}

TEST(Chop, SignPattern3d) {
  const std::size_t n = 4;
  cvecd data(n * n * n, cdouble(1, 0));
  chop(data.data(), {n, n, n});
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t z = 0; z < n; ++z) {
        const double want = ((x + y + z) % 2 == 0) ? 1.0 : -1.0;
        ASSERT_EQ(data[(x * n + y) * n + z].real(), want);
      }
    }
  }
}

TEST(Chop, EquivalentToHalfPeriodShiftOfSpectrum) {
  // FFT(chop(x))[k] == FFT(x)[(k + n/2) mod n]: chopping shifts the
  // conjugate domain by half the grid.
  const std::size_t n = 16;
  auto x = random_data(n, 2);

  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> fx(n), scratch(plan.scratch_size());
  plan.transform(x.data(), fx.data(), scratch.data());

  auto chopped = x;
  chop(chopped.data(), {n});
  aligned_vector<cdouble> fc(n);
  plan.transform(chopped.data(), fc.data(), scratch.data());

  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(std::abs(fc[k] - fx[(k + n / 2) % n]), 0.0, 1e-10) << "k=" << k;
  }
}

TEST(Chop, ParallelMatchesSerial) {
  auto data = random_data(32 * 32, 3);
  auto serial = data;
  chop(serial.data(), {32, 32});
  ThreadPool pool(4);
  chop(data.data(), {32, 32}, pool);
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], serial[i]);
}

}  // namespace
}  // namespace nufft::fft
