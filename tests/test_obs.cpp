// Tests for the observability layer (src/obs/): metrics registry semantics
// and thread-safety, span rings, exporter well-formedness, and the
// stats-discipline invariants it is built to expose — in particular the
// multi-pass busy-time accumulation fixed in BatchNufft/Nufft. This binary
// carries the `obs` ctest label and is included in the
// -DNUFFT_SANITIZE=thread build.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "baselines/reference_nufft.hpp"
#include "core/nufft.hpp"
#include "core/stats.hpp"
#include "datasets/trajectory.hpp"
#include "exec/batch_nufft.hpp"
#include "exec/engine.hpp"
#include "exec/plan_registry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;
using exec::BatchNufft;
using exec::NufftEngine;
using exec::PlanRegistry;

// Saves and restores the obs switches around a test, clearing accumulated
// state on both sides so tests cannot observe each other.
class ObsGuard {
 public:
  ObsGuard() : metrics_(obs::metrics_enabled()), trace_(obs::trace_enabled()) { clear(); }
  ~ObsGuard() {
    clear();
    obs::set_metrics_enabled(metrics_);
    obs::set_trace_enabled(trace_);
  }

 private:
  static void clear() {
    obs::MetricsRegistry::instance().reset();
    obs::reset_spans();
  }
  bool metrics_;
  bool trace_;
};

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent checker, enough to prove the exporters emit parseable
// JSON (balanced structure, legal literals/strings/numbers).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- MetricsRegistry --------------------------------------------------------

TEST(Metrics, ConcurrentCountersAreExact) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      auto& mr = obs::MetricsRegistry::instance();
      // Mix a shared counter with per-thread registrations so the map sees
      // concurrent inserts and lookups.
      auto& shared = mr.counter("obs_test.shared");
      auto& own = mr.counter("obs_test.thread." + std::to_string(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared.add(1);
        own.add(2);
        mr.histogram("obs_test.hist").record(i % 1000);
      }
    });
  }
  for (auto& t : ts) t.join();

  auto& mr = obs::MetricsRegistry::instance();
  EXPECT_EQ(mr.counter("obs_test.shared").value(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mr.counter("obs_test.thread." + std::to_string(t)).value(), 2 * kPerThread);
  }
  EXPECT_EQ(mr.histogram("obs_test.hist").count(), kThreads * kPerThread);
}

TEST(Metrics, ResetKeepsCachedReferencesValid) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  auto& c = obs::MetricsRegistry::instance().counter("obs_test.reset");
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
  obs::MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(3);  // the pre-reset reference still points at the live instrument
  EXPECT_EQ(obs::MetricsRegistry::instance().counter("obs_test.reset").value(), 3u);
}

TEST(Metrics, HistogramBucketPlacement) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 0);
  EXPECT_EQ(Histogram::bucket_of(2), 1);
  EXPECT_EQ(Histogram::bucket_of(3), 1);
  EXPECT_EQ(Histogram::bucket_of(4), 2);
  EXPECT_EQ(Histogram::bucket_of(1023), 9);
  EXPECT_EQ(Histogram::bucket_of(1024), 10);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(10), 1024u);

  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(1 << 20);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 0u + 5 + 5 + (1 << 20));
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(20), 1u);
}

TEST(Metrics, DisabledRecordersRegisterNothing) {
  ObsGuard guard;
  obs::set_metrics_enabled(false);
  obs::count("obs_test.off_counter");
  obs::observe_ns("obs_test.off_hist", 42);
  obs::gauge_set("obs_test.off_gauge", 1);
  obs::set_metrics_enabled(true);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  for (const auto& [name, v] : snap.counters) EXPECT_NE(name, "obs_test.off_counter");
  for (const auto& h : snap.histograms) EXPECT_NE(h.name, "obs_test.off_hist");
  for (const auto& [name, v] : snap.gauges) EXPECT_NE(name, "obs_test.off_gauge");
}

// --- span rings -------------------------------------------------------------

TEST(Trace, SpansDrainAcrossThreads) {
  ObsGuard guard;
  obs::set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 100;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        obs::Span s("obs_test.span", "test", i);
      }
    });
  }
  for (auto& t : ts) t.join();

  const auto spans = obs::drain_spans();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpans));
  std::vector<std::uint32_t> tids;
  for (const auto& s : spans) {
    EXPECT_STREQ(s.name, "obs_test.span");
    EXPECT_LE(s.t0_ns, s.t1_ns);
    tids.push_back(s.tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(obs::dropped_spans(), 0u);
  // The drain cleared the rings.
  EXPECT_TRUE(obs::drain_spans().empty());
}

TEST(Trace, DisabledSpanRecordsNothing) {
  ObsGuard guard;
  obs::set_trace_enabled(false);
  { obs::Span s("obs_test.off", "test"); }
  obs::set_trace_enabled(true);
  EXPECT_TRUE(obs::drain_spans().empty());
}

// --- exporters --------------------------------------------------------------

TEST(Export, ChromeTraceJsonIsWellFormed) {
  ObsGuard guard;
  obs::set_trace_enabled(true);
  {
    obs::Span a("obs_test.outer", "test", 3);
    obs::Span b("obs_test.inner", "test");
  }
  const auto spans = obs::drain_spans();
  ASSERT_EQ(spans.size(), 2u);
  const std::string json = obs::chrome_trace_json(spans);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.outer"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Empty input is still a valid document.
  EXPECT_TRUE(JsonChecker(obs::chrome_trace_json({})).valid());
}

TEST(Export, MetricsJsonIsWellFormed) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  auto& mr = obs::MetricsRegistry::instance();
  mr.counter("obs_test.a").add(1);
  mr.counter("obs_test.b").add(2);
  mr.gauge("obs_test.g").set(-5);
  mr.histogram("obs_test.h").record(100);
  const std::string json = obs::metrics_json(mr.snapshot());
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"obs_test.a\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(obs::metrics_json(obs::MetricsSnapshot{})).valid());
}

// --- OperatorStats discipline ----------------------------------------------

TEST(Stats, AddSchedulerPassAccumulatesElementWise) {
  OperatorStats s;
  s.add_scheduler_pass(4, 1, {10, 20});
  s.add_scheduler_pass(4, 2, {1, 2, 3});  // wider pool on a later pass
  EXPECT_EQ(s.tasks, 8);
  EXPECT_EQ(s.privatized_tasks, 3);
  ASSERT_EQ(s.busy_ns_per_context.size(), 3u);
  EXPECT_EQ(s.busy_ns_per_context[0], 11u);
  EXPECT_EQ(s.busy_ns_per_context[1], 22u);
  EXPECT_EQ(s.busy_ns_per_context[2], 3u);
}

TEST(Stats, LoadImbalanceSentinels) {
  OperatorStats s;
  EXPECT_DOUBLE_EQ(s.load_imbalance(), 0.0);  // no pass ran

  s.add_scheduler_pass(0, 0, {0, 0});
  EXPECT_DOUBLE_EQ(s.load_imbalance(), 1.0);  // ran with nothing to do

  OperatorStats t;
  t.add_scheduler_pass(8, 0, {0, 0});
  EXPECT_DOUBLE_EQ(t.load_imbalance(), 0.0);  // unmeasurable, not perfect

  OperatorStats u;
  u.add_scheduler_pass(8, 0, {100, 300});
  EXPECT_DOUBLE_EQ(u.load_imbalance(), 1.5);  // max 300 / mean 200
}

struct Fixture {
  GridDesc g;
  datasets::SampleSet set;
};

Fixture make_fixture(int threads_hint = 2) {
  (void)threads_hint;
  Fixture f;
  f.g = make_grid(3, 12, 2.0);
  f.set = testing::small_trajectory(TrajectoryType::kRadial, 3, 12, 400);
  return f;
}

void expect_phase_invariant(const OperatorStats& s, const char* what) {
  // total_s spans the whole apply, the phases are disjoint sub-intervals:
  // phase_sum ≤ total (up to clock granularity), and the slack is bounded
  // overhead, not a missing phase.
  EXPECT_GT(s.total_s, 0.0) << what;
  EXPECT_LE(s.phase_sum(), s.total_s + 1e-6) << what;
  EXPECT_LE(s.total_s - s.phase_sum(), 0.5 * s.total_s + 1e-3) << what;
}

TEST(Stats, PhaseSumMatchesTotalAcrossOperators) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 2;
  cvecf img = testing::random_image(f.g.image_elems(), 1);
  cvecf raw = testing::random_raw(f.set.count(), 2);
  cvecf img_out(static_cast<std::size_t>(f.g.image_elems()));
  cvecf raw_out(static_cast<std::size_t>(f.set.count()));

  Nufft plan(f.g, f.set, cfg);
  plan.forward(img.data(), raw_out.data());
  expect_phase_invariant(plan.last_forward_stats(), "Nufft::forward");
  plan.adjoint(raw.data(), img_out.data());
  expect_phase_invariant(plan.last_adjoint_stats(), "Nufft::adjoint");

  // Reset discipline: a second apply reports one apply's worth of tasks.
  const int tasks_once = plan.last_adjoint_stats().tasks;
  plan.adjoint(raw.data(), img_out.data());
  EXPECT_EQ(plan.last_adjoint_stats().tasks, tasks_once);
  expect_phase_invariant(plan.last_adjoint_stats(), "Nufft::adjoint (2nd)");

  baselines::ReferenceNufft ref(f.g, f.set, 4.0, 2);
  ref.forward(img.data(), raw_out.data());
  expect_phase_invariant(ref.last_forward_stats(), "ReferenceNufft::forward");
  ref.adjoint(raw.data(), img_out.data());
  expect_phase_invariant(ref.last_adjoint_stats(), "ReferenceNufft::adjoint");
  ref.adjoint(raw.data(), img_out.data());
  expect_phase_invariant(ref.last_adjoint_stats(), "ReferenceNufft::adjoint (2nd)");

  BatchNufft batch(plan, 2);
  cvecf imgs = testing::random_image(4 * f.g.image_elems(), 3);
  cvecf raws = testing::random_raw(4 * f.set.count(), 4);
  cvecf imgs_out(static_cast<std::size_t>(4 * f.g.image_elems()));
  cvecf raws_out(static_cast<std::size_t>(4 * f.set.count()));
  batch.forward(imgs.data(), raws_out.data(), 4);
  expect_phase_invariant(batch.last_forward_stats(), "BatchNufft::forward");
  batch.adjoint(raws.data(), imgs_out.data(), 4);
  expect_phase_invariant(batch.last_adjoint_stats(), "BatchNufft::adjoint");
}

// Regression for the multi-pass busy-time loss: a capacity-2 BatchNufft
// applied to 4 slices runs two scheduler walks; the per-apply stats must
// cover both, not just the last one.
TEST(Stats, MultiPassAdjointBusyCoversAllWalks) {
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(f.g, f.set, cfg);
  BatchNufft batch(plan, 2);

  cvecf raws = testing::random_raw(4 * f.set.count(), 5);
  cvecf imgs_out(static_cast<std::size_t>(4 * f.g.image_elems()));

  batch.adjoint(raws.data(), imgs_out.data(), 2);  // one walk
  const OperatorStats one = batch.last_adjoint_stats();
  const std::uint64_t busy_one = std::accumulate(one.busy_ns_per_context.begin(),
                                                 one.busy_ns_per_context.end(),
                                                 std::uint64_t{0});
  ASSERT_GT(one.tasks, 0);
  ASSERT_GT(busy_one, 0u);

  batch.adjoint(raws.data(), imgs_out.data(), 4);  // two walks, equal work each
  const OperatorStats two = batch.last_adjoint_stats();
  const std::uint64_t busy_two = std::accumulate(two.busy_ns_per_context.begin(),
                                                 two.busy_ns_per_context.end(),
                                                 std::uint64_t{0});
  // Task counts are deterministic: exactly double.
  EXPECT_EQ(two.tasks, 2 * one.tasks);
  EXPECT_EQ(two.privatized_tasks, 2 * one.privatized_tasks);
  // Busy time covers both walks — strictly more than any single walk. (With
  // the pre-fix overwrite, `two` would report only the final walk ≈ busy_one.)
  EXPECT_GT(busy_two, busy_one);
  EXPECT_EQ(two.busy_ns_per_context.size(), one.busy_ns_per_context.size());
}

// --- spans vs. stats --------------------------------------------------------

TEST(Trace, BatchAdjointSpanSumMatchesStats) {
  ObsGuard guard;
  obs::set_trace_enabled(true);
  Fixture f = make_fixture();
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(f.g, f.set, cfg);
  BatchNufft batch(plan, 2);

  cvecf raws = testing::random_raw(4 * f.set.count(), 6);
  cvecf imgs_out(static_cast<std::size_t>(4 * f.g.image_elems()));
  obs::reset_spans();
  batch.adjoint(raws.data(), imgs_out.data(), 4);
  const OperatorStats stats = batch.last_adjoint_stats();

  const auto spans = obs::drain_spans();
  double conv_span_s = 0.0, fft_span_s = 0.0, scale_span_s = 0.0, apply_span_s = 0.0;
  for (const auto& s : spans) {
    const double dur = static_cast<double>(s.t1_ns - s.t0_ns) * 1e-9;
    if (std::string_view(s.name) == "batch.conv") conv_span_s += dur;
    if (std::string_view(s.name) == "batch.fft") fft_span_s += dur;
    if (std::string_view(s.name) == "batch.scale") scale_span_s += dur;
    if (std::string_view(s.name) == "batch.adjoint") apply_span_s += dur;
  }
  ASSERT_GT(conv_span_s, 0.0);
  ASSERT_GT(apply_span_s, 0.0);
  // The spans bracket exactly the regions the OperatorStats timers measure,
  // so per phase they must agree within 5% (plus a floor for clock grain).
  const auto close = [](double span_s, double stat_s) {
    return std::abs(span_s - stat_s) <= 0.05 * std::max(span_s, stat_s) + 1e-4;
  };
  EXPECT_TRUE(close(conv_span_s, stats.conv_s))
      << "conv spans " << conv_span_s << " vs stats " << stats.conv_s;
  EXPECT_TRUE(close(fft_span_s, stats.fft_s))
      << "fft spans " << fft_span_s << " vs stats " << stats.fft_s;
  EXPECT_TRUE(close(scale_span_s, stats.scale_s))
      << "scale spans " << scale_span_s << " vs stats " << stats.scale_s;
  EXPECT_TRUE(close(apply_span_s, stats.total_s))
      << "apply span " << apply_span_s << " vs stats " << stats.total_s;
}

// --- engine / registry counters ---------------------------------------------

TEST(Metrics, EngineAndRegistryCountersMirrorStats) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  Fixture f = make_fixture();
  auto samples = std::make_shared<datasets::SampleSet>(f.set);
  PlanConfig cfg;
  cfg.threads = 1;

  PlanRegistry registry;
  cvecf img = testing::random_image(f.g.image_elems(), 7);
  std::vector<cvecf> raw_out(4, cvecf(static_cast<std::size_t>(f.set.count())));
  {
    NufftEngine engine({2, 1});
    std::vector<std::future<exec::JobResult>> futs;
    for (int i = 0; i < 4; ++i) {
      futs.push_back(engine.submit(exec::Op::kForward, registry, f.g, samples, cfg,
                                   img.data(), raw_out[static_cast<std::size_t>(i)].data(), 1));
    }
    for (auto& fu : futs) fu.get();
  }

  auto& mr = obs::MetricsRegistry::instance();
  EXPECT_EQ(mr.counter("engine.jobs_submitted").value(), 4u);
  EXPECT_EQ(mr.counter("engine.jobs_completed").value(), 4u);
  EXPECT_EQ(mr.counter("engine.jobs_failed").value(), 0u);
  EXPECT_EQ(mr.histogram("engine.queue_wait_ns").count(), 4u);

  const auto rs = registry.stats();
  EXPECT_EQ(mr.counter("registry.misses").value(), static_cast<std::uint64_t>(rs.misses));
  EXPECT_EQ(mr.counter("registry.hits").value(), static_cast<std::uint64_t>(rs.hits));
  EXPECT_EQ(rs.hits + rs.misses, 4u);
}

}  // namespace
}  // namespace nufft
