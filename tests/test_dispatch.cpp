// Convolution dispatch registry (`ctest -L dispatch`).
//
// The registry's load-bearing promise is BIT-identity: a plan bound to a
// specialized (backend, dim, W, evaluator) variant must produce exactly the
// grids and sample values the generic loop produces — the fallback is a pure
// performance decision, never a numerical one. These tests enforce that
// promise variant by variant (spread, interp, and the fused forward scale
// pass), sweep the boundary coordinates where the float-rounding window trim
// diverges first, pin the fallback rules, and check the plan-time selection
// is observable (PlanStats + the obs counter).
//
// Everything runs at threads = 1: the work-stealing scheduler makes halo
// accumulation order nondeterministic across runs at higher widths, which
// would break bitwise comparison between two plans for reasons unrelated to
// the dispatch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "core/conv_dispatch.hpp"
#include "core/convolution_avx2.hpp"
#include "core/grid.hpp"
#include "core/nufft.hpp"
#include "core/tolerance.hpp"
#include "datasets/trajectory.hpp"
#include "kernels/es_kernel.hpp"
#include "kernels/horner.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::SampleSet;
using datasets::TrajectoryType;
using kernels::KernelEval;

// ---- plan-construction helpers -------------------------------------------

index_t image_n_for(int dim) { return dim == 3 ? 10 : (dim == 2 ? 20 : 64); }

index_t count_for(int dim) { return dim == 3 ? 400 : (dim == 2 ? 350 : 300); }

/// PlanConfig that resolves exactly to `key` at plan time (modulo the
/// specialize_conv switch, which picks specialized vs generic).
PlanConfig cfg_for(const ConvVariantKey& key, bool specialize) {
  PlanConfig cfg;
  cfg.kernel = key.eval == KernelEval::kHorner ? kernels::KernelType::kEs
                                               : kernels::KernelType::kKaiserBessel;
  cfg.eval = key.eval;
  cfg.kernel_radius = static_cast<double>(key.width2) / 2.0;
  cfg.lut_samples_per_unit = 512;
  cfg.threads = 1;
  cfg.specialize_conv = specialize;
  switch (key.backend) {
    case ConvBackend::kScalar:
      cfg.use_simd = false;
      break;
    case ConvBackend::kSse:
      cfg.use_simd = true;
      cfg.isa = SimdIsa::kSse;
      break;
    case ConvBackend::kAvx2:
      cfg.use_simd = true;
      cfg.isa = SimdIsa::kAvx2;
      break;
  }
  return cfg;
}

/// Coordinates adjacent to cell boundaries: exact integers, exact
/// half-integers, and ±1-ulp perturbations of both — the inputs where the
/// k ± W float-rounding trim admits or rejects an edge neighbour, which is
/// exactly where a re-derived trim diverges first (satellite bugfix 3).
SampleSet boundary_samples(int dim, index_t m, index_t count) {
  SampleSet set;
  set.dim = dim;
  set.m = m;
  set.k = count;
  set.s = 1;
  const auto mf = static_cast<float>(m);
  for (int d = 0; d < dim; ++d) {
    fvec& c = set.coords[static_cast<std::size_t>(d)];
    c.resize(static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) {
      // March cells with a dim-dependent stride so the dims decorrelate.
      const float cell =
          static_cast<float>((static_cast<index_t>(i) * (d + 1) + d) % m);
      float v;
      switch (i % 8) {
        case 0: v = cell; break;                                      // integer
        case 1: v = cell + 0.5f; break;                               // half-integer
        case 2: v = std::nextafterf(cell + 0.5f, 0.0f); break;        // half − 1 ulp
        case 3: v = std::nextafterf(cell + 0.5f, mf); break;          // half + 1 ulp
        case 4: v = std::nextafterf(cell, mf); break;                 // int + 1 ulp
        case 5: v = cell > 0.0f ? std::nextafterf(cell, 0.0f) : 0.0f; break;
        case 6: v = std::nextafterf(mf, 0.0f); break;                 // domain edge
        default: v = mf - 0.5f; break;
      }
      if (!(v >= 0.0f && v < mf)) v = 0.0f;
      c[static_cast<std::size_t>(i)] = v;
    }
  }
  return set;
}

/// Clustered samples: a tight blob in one corner so at least one task
/// crosses the (lowered) Eq. 6 privatization threshold — covers the
/// box-rebased spread path of the specialized variants.
SampleSet clustered_samples(int dim, index_t m, index_t count) {
  SampleSet set;
  set.dim = dim;
  set.m = m;
  set.k = count;
  set.s = 1;
  const auto mf = static_cast<float>(m);
  for (int d = 0; d < dim; ++d) {
    fvec& c = set.coords[static_cast<std::size_t>(d)];
    c.resize(static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) {
      // Deterministic pseudo-random offsets inside a 3-cell blob near the
      // domain edge (so windows also wrap).
      const auto h = static_cast<float>((i * 2654435761u + d * 40503u) % 3000u) / 1000.0f;
      float v = mf - 1.5f + h;  // [m − 1.5, m + 1.5) before wrap
      if (v >= mf) v -= mf;
      c[static_cast<std::size_t>(i)] = v;
    }
  }
  return set;
}

struct PairResult {
  cvecf spec;
  cvecf gen;
};

void expect_bitwise_equal(const cvecf& a, const cvecf& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(cfloat)), 0)
      << what << ": specialized and generic outputs differ bitwise";
}

/// Build the specialized/generic plan pair for `key` over `set` and compare
/// spread grids, interp outputs, and full forward outputs bitwise.
void compare_variant(const ConvVariantKey& key, const GridDesc& g, const SampleSet& set,
                     double privatization_factor = 1.0) {
  PlanConfig spec_cfg = cfg_for(key, true);
  PlanConfig gen_cfg = cfg_for(key, false);
  spec_cfg.privatization_factor = privatization_factor;
  gen_cfg.privatization_factor = privatization_factor;

  Nufft spec(g, set, spec_cfg);
  Nufft gen(g, set, gen_cfg);

  const ConvVariant* v = ConvDispatch::instance().find(key);
  ASSERT_NE(v, nullptr) << "variant not registered";
  ASSERT_TRUE(spec.plan_stats().conv_specialized) << v->name;
  ASSERT_EQ(spec.plan_stats().conv_variant, v->name);
  ASSERT_EQ(spec.plan_stats().conv_variant_id, key.id());
  ASSERT_FALSE(gen.plan_stats().conv_specialized);
  ASSERT_EQ(gen.plan_stats().conv_variant, "generic");
  ASSERT_EQ(gen.plan_stats().conv_variant_id, kGenericConvVariantId);

  const index_t count = set.count();
  const cvecf raw = testing::random_raw(count, 7);
  const cvecf img = testing::random_image(g.image_elems(), 8);

  // Adjoint Part 1+2 (spread), including the privatize/reduce machinery.
  spec.spread(raw.data());
  gen.spread(raw.data());
  {
    cvecf gs(spec.grid_data(), spec.grid_data() + g.grid_elems());
    cvecf gg(gen.grid_data(), gen.grid_data() + g.grid_elems());
    expect_bitwise_equal(gs, gg, v->name + " spread");
  }

  // Forward Part 1+2 (interp) from identical grids.
  {
    cvecf rs(static_cast<std::size_t>(count)), rg(static_cast<std::size_t>(count));
    spec.interp(rs.data());
    gen.interp(rg.data());
    expect_bitwise_equal(rs, rg, v->name + " interp");
  }

  // Full forward: also exercises the fused image_to_grid scale pass the
  // specialized plans take versus the generic clear+scatter passes.
  {
    cvecf rs(static_cast<std::size_t>(count)), rg(static_cast<std::size_t>(count));
    spec.forward(img.data(), rs.data());
    gen.forward(img.data(), rg.data());
    expect_bitwise_equal(rs, rg, v->name + " forward");
  }
}

bool backend_available(ConvBackend b) {
  return b != ConvBackend::kAvx2 || avx2_available();
}

// ---- registry shape -------------------------------------------------------

TEST(ConvDispatchRegistry, CoversEveryCalibratedCombination) {
  const auto& variants = ConvDispatch::instance().variants();
  EXPECT_EQ(variants.size(), 90u);  // 3 backends × 3 dims × 5 widths × 2 evals

  for (const ConvBackend b :
       {ConvBackend::kScalar, ConvBackend::kSse, ConvBackend::kAvx2}) {
    for (std::uint8_t dim = 1; dim <= 3; ++dim) {
      for (std::uint8_t w2 = ConvDispatch::kMinWidth2; w2 <= ConvDispatch::kMaxWidth2; ++w2) {
        for (const KernelEval e : {KernelEval::kLut, KernelEval::kHorner}) {
          const ConvVariantKey key{b, dim, w2, e};
          const ConvVariant* v = ConvDispatch::instance().find(key);
          ASSERT_NE(v, nullptr)
              << conv_backend_name(b) << " d" << int(dim) << " w" << int(w2);
          EXPECT_TRUE(v->key == key);
          EXPECT_NE(v->spread, nullptr);
          EXPECT_NE(v->interp, nullptr);
          EXPECT_EQ(v->key.id(), key.id());
        }
      }
    }
  }
}

TEST(ConvDispatchRegistry, UnknownKeysFindNothing) {
  const auto& reg = ConvDispatch::instance();
  EXPECT_EQ(reg.find({ConvBackend::kScalar, 1, 3, KernelEval::kLut}), nullptr);   // W=1.5
  EXPECT_EQ(reg.find({ConvBackend::kScalar, 1, 9, KernelEval::kLut}), nullptr);   // W=4.5
  EXPECT_EQ(reg.find({ConvBackend::kAvx2, 4, 8, KernelEval::kHorner}), nullptr);  // dim 4
  EXPECT_EQ(reg.find({ConvBackend::kAvx2, 0, 8, KernelEval::kHorner}), nullptr);
}

TEST(ConvDispatchRegistry, Width2RecognizesOnlyCalibratedHalfIntegerWidths) {
  EXPECT_EQ(conv_width2(2.0), 4);
  EXPECT_EQ(conv_width2(2.5), 5);
  EXPECT_EQ(conv_width2(4.0), 8);
  EXPECT_EQ(conv_width2(1.5), 0);   // below the calibrated set
  EXPECT_EQ(conv_width2(4.5), 0);   // above it
  EXPECT_EQ(conv_width2(2.3), 0);   // not half-integer
  EXPECT_EQ(conv_width2(0.0), 0);
}

// ---- the AVX2 Horner row evaluator ---------------------------------------

TEST(HornerAvx2, LaneExactWithScalarRecurrence) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2+FMA on this CPU";
  for (const double W : {2.0, 2.5, 3.0, 4.0}) {
    const kernels::EsKernel es(W, 2.0);
    const kernels::KernelHorner h(es);
    ASSERT_EQ(h.stride() % 8, 0) << "AVX2 row evaluation needs 8-float rows";
    const int len = h.segments();
    float ref[kernels::KernelHorner::kMaxStride];
    float got[kernels::KernelHorner::kMaxStride];
    for (int s = 0; s <= 64; ++s) {
      const float z = static_cast<float>(s) / 64.0f;
      h.eval_window(z, len, ref);
      kernels::eval_window_avx2(h, z, len, got);
      for (int i = 0; i < len; ++i) {
        ASSERT_EQ(std::memcmp(&ref[i], &got[i], sizeof(float)), 0)
            << "W=" << W << " z=" << z << " lane " << i
            << ": scalar=" << ref[i] << " avx2=" << got[i];
      }
    }
  }
}

// ---- the bit-match matrix -------------------------------------------------

TEST(ConvDispatchBitMatch, EveryVariantMatchesGenericOnRandomPlans) {
  for (const ConvVariant& v : ConvDispatch::instance().variants()) {
    if (!backend_available(v.key.backend)) continue;
    const int dim = v.key.dim;
    const index_t n = image_n_for(dim);
    const GridDesc g = make_grid(dim, n, 2.0);
    const auto set = testing::small_trajectory(TrajectoryType::kRandom, dim, n,
                                               count_for(dim), 31 + v.key.id() % 17);
    SCOPED_TRACE(v.name);
    compare_variant(v.key, g, set);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ConvDispatchBitMatch, BoundaryCoordinateSweep) {
  // Satellite bugfix 3: the float-rounding trim must behave identically in
  // every specialized variant, so coordinates pinned to (and 1 ulp around)
  // cell boundaries — where the trim decides whether the edge neighbour is
  // in or out — must produce bitwise-equal grids.
  for (const ConvVariant& v : ConvDispatch::instance().variants()) {
    if (!backend_available(v.key.backend)) continue;
    const int dim = v.key.dim;
    const index_t n = image_n_for(dim);
    const GridDesc g = make_grid(dim, n, 2.0);
    const auto set = boundary_samples(dim, g.m[0], count_for(dim));
    SCOPED_TRACE(v.name);
    compare_variant(v.key, g, set);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ConvDispatchBitMatch, PrivatizedTasksMatchGeneric) {
  // Clustered samples + a lowered threshold push tasks onto the privatized
  // (box-local, rebased-index) spread path at threads = 1, deterministically.
  for (const ConvBackend b :
       {ConvBackend::kScalar, ConvBackend::kSse, ConvBackend::kAvx2}) {
    if (!backend_available(b)) continue;
    for (const KernelEval e : {KernelEval::kLut, KernelEval::kHorner}) {
      const ConvVariantKey key{b, 2, 8, e};
      const index_t n = image_n_for(2);
      const GridDesc g = make_grid(2, n, 2.0);
      const auto set = clustered_samples(2, g.m[0], 600);
      SCOPED_TRACE(std::string(conv_backend_name(b)) +
                   (e == KernelEval::kHorner ? ".horner" : ".lut"));
      compare_variant(key, g, set, /*privatization_factor=*/0.25);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---- fallback rules --------------------------------------------------------

TEST(ConvDispatchFallback, UncoveredShapesRouteToGeneric) {
  const int dim = 2;
  const index_t n = image_n_for(dim);
  const GridDesc g = make_grid(dim, n, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, dim, n, 300);

  // W below the calibrated set.
  {
    PlanConfig cfg;
    cfg.kernel_radius = 1.5;
    cfg.threads = 1;
    Nufft plan(g, set, cfg);
    EXPECT_FALSE(plan.plan_stats().conv_specialized);
    EXPECT_EQ(plan.plan_stats().conv_variant, "generic");
    EXPECT_EQ(plan.plan_stats().conv_variant_id, kGenericConvVariantId);
  }
  // Non-half-integer W (LUT — Horner requires half-integer widths anyway).
  {
    PlanConfig cfg;
    cfg.kernel_radius = 2.3;
    cfg.threads = 1;
    Nufft plan(g, set, cfg);
    EXPECT_FALSE(plan.plan_stats().conv_specialized);
  }
  // The explicit ablation switch.
  {
    PlanConfig cfg;
    cfg.specialize_conv = false;
    cfg.threads = 1;
    Nufft plan(g, set, cfg);
    EXPECT_FALSE(plan.plan_stats().conv_specialized);
    EXPECT_EQ(plan.plan_stats().conv_variant, "generic");
  }
  // A covered shape binds — and to the key the config implies, with the
  // kAuto ISA resolving to the widest available backend.
  {
    PlanConfig cfg;
    cfg.threads = 1;  // default W = 4.0, KB + LUT
    cfg.isa = SimdIsa::kAuto;
    Nufft plan(g, set, cfg);
    EXPECT_TRUE(plan.plan_stats().conv_specialized);
    const char* backend = avx2_available() ? "avx2" : "sse";
    EXPECT_EQ(plan.plan_stats().conv_variant, std::string(backend) + ".d2.w8.lut");
  }
}

// ---- plan-time observability -----------------------------------------------

TEST(ConvDispatchObs, ToleranceDrivenEsPlanSelectsHornerVariantAndCounts) {
  // Acceptance criterion: a tolerance-planned ES config must bind the
  // Horner variant (AVX2 on this hardware) and the selection must be
  // observable through the obs counter.
  const int dim = 3;
  const index_t n = image_n_for(dim);
  const GridDesc g = make_grid(dim, n, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, dim, n, 300);

  PlanConfig cfg;
  cfg.kernel = kernels::KernelType::kEs;
  cfg.tolerance = 1e-6;  // calibration table: W = 4.0, Horner
  cfg.threads = 1;
  cfg.isa = SimdIsa::kAuto;

  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  Nufft plan(g, set, cfg);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_metrics_enabled(false);

  ASSERT_TRUE(plan.plan_stats().conv_specialized);
  const std::string expected_backend = avx2_available() ? "avx2" : "sse";
  EXPECT_EQ(plan.plan_stats().conv_variant, expected_backend + ".d3.w8.horner");

  const std::string counter = "nufft.conv.variant." + plan.plan_stats().conv_variant;
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == counter) {
      found = true;
      EXPECT_GE(value, 1u);
    }
  }
  EXPECT_TRUE(found) << "selection counter " << counter << " was not recorded";
}

}  // namespace
}  // namespace nufft
