// Tests for the serving layer (src/serve/): wire-protocol round trips and
// corruption rejection, then loopback end-to-end coverage — two tenants over
// AF_UNIX against a live NufftServer, results compared bitwise against
// direct in-process execution, overload shedding, registry quota rejection,
// and deadline handling. This executable carries the `serve` ctest label and
// is included in the sanitizer sweep (tools/run_fuzz_sanitized.sh).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace nufft::serve {
namespace {

using datasets::TrajectoryType;

std::string unique_socket_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / ("nufft_serve_" + std::to_string(::getpid()) + "_" + tag + "_" +
                 std::to_string(counter++) + ".sock"))
      .string();
}

struct Fixture {
  GridDesc g;
  datasets::SampleSet set;
  PlanConfig cfg;
  std::vector<cfloat> image;  // image_elems values
  std::vector<cfloat> raw;    // sample_count values
};

Fixture make_fixture(std::uint64_t seed = 7) {
  Fixture f;
  const index_t n = 16;
  f.g = make_grid(2, n, 2.0);
  f.set = testing::small_trajectory(TrajectoryType::kRadial, 2, n, 300, seed);
  f.cfg.threads = 1;  // single-thread scalar applies are bitwise deterministic
  f.cfg.use_simd = false;
  const auto img = testing::random_image(f.g.image_elems(), seed + 1);
  const auto raw = testing::random_raw(f.set.count(), seed + 2);
  f.image.assign(img.begin(), img.end());
  f.raw.assign(raw.begin(), raw.end());
  return f;
}

// Perturb a fraction of the samples by a sub-cell amount — the streaming
// warm-update path's home turf (tests/test_streaming.cpp covers the core).
datasets::SampleSet jitter_set(const datasets::SampleSet& base, double fraction,
                               std::uint64_t seed) {
  datasets::SampleSet out = base;
  Rng rng(seed);
  const auto count = static_cast<std::size_t>(base.count());
  const auto mf = static_cast<float>(base.m);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.uniform(0.0, 1.0) >= fraction) continue;
    for (int d = 0; d < base.dim; ++d) {
      auto& x = out.coords[static_cast<std::size_t>(d)][i];
      x = std::clamp(x + static_cast<float>(rng.uniform(-0.5, 0.5)), 0.0f,
                     std::nextafter(mf, 0.0f));
    }
  }
  return out;
}

std::uint64_t counter_value(const std::vector<std::pair<std::string, std::uint64_t>>& c,
                            const std::string& name) {
  for (const auto& [k, v] : c) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

// Raw-socket helpers for tests that need frame-level control (pipelining,
// identity reuse, deliberately unread responses).
int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

// Write as much as the peer accepts; false once the stream dies (the
// slow-reader test keeps pushing after the server has hung up on it).
bool write_some(int fd, const Bytes& b) {
  std::size_t off = 0;
  while (off < b.size()) {
    const auto n = ::send(fd, b.data() + off, b.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<Frame> read_frames(int fd, std::size_t want) {
  std::vector<Frame> out;
  Bytes rx;
  std::uint8_t chunk[65536];
  while (out.size() < want) {
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    rx.insert(rx.end(), chunk, chunk + n);
    std::size_t off = 0;
    Frame f;
    while (off < rx.size()) {
      const std::size_t c = try_decode_frame(rx.data() + off, rx.size() - off, f);
      if (c == 0) break;
      off += c;
      out.push_back(f);
    }
    rx.erase(rx.begin(), rx.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return out;
}

// --- wire protocol ----------------------------------------------------------

TEST(Protocol, FrameRoundTripAndIncrementalDecode) {
  Bytes body = {1, 2, 3, 4, 5};
  Bytes wire;
  encode_frame(wire, MsgType::kSubmit, 42, body);
  ASSERT_EQ(wire.size(), sizeof(FrameHeader) + body.size());

  // Every strict prefix is "incomplete", never an error.
  Frame f;
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(try_decode_frame(wire.data(), n, f), 0u) << "prefix " << n;
  }
  EXPECT_EQ(try_decode_frame(wire.data(), wire.size(), f), wire.size());
  EXPECT_EQ(f.type, MsgType::kSubmit);
  EXPECT_EQ(f.request_id, 42u);
  EXPECT_EQ(f.body, body);
}

TEST(Protocol, CorruptFramesAreRejected) {
  Bytes body = {9, 9, 9};
  Bytes wire;
  encode_frame(wire, MsgType::kHello, 1, body);
  Frame f;

  auto expect_corrupt = [&](Bytes bad) {
    try {
      try_decode_frame(bad.data(), bad.size(), f);
      ADD_FAILURE() << "corrupt frame accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIoCorruption);
    }
  };

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  expect_corrupt(bad_magic);

  Bytes bad_version = wire;
  bad_version[4] ^= 0xFF;
  expect_corrupt(bad_version);

  Bytes bad_type = wire;
  bad_type[6] = 0xEE;  // unknown message type
  expect_corrupt(bad_type);

  Bytes bad_body = wire;
  bad_body[sizeof(FrameHeader)] ^= 0x01;  // checksum mismatch
  expect_corrupt(bad_body);

  Bytes huge = wire;
  const std::uint32_t len = kMaxBody + 1;
  std::memcpy(huge.data() + 16, &len, sizeof(len));  // body_len field
  expect_corrupt(huge);
}

TEST(Protocol, EveryMessageTypeRoundTrips) {
  Fixture fx = make_fixture();

  HelloMsg hello{"tenant-a"};
  EXPECT_EQ(decode_hello(encode(hello)).tenant, "tenant-a");

  HelloAckMsg hack;
  hack.session_id = 77;
  const auto hack2 = decode_hello_ack(encode(hack));
  EXPECT_EQ(hack2.session_id, 77u);
  EXPECT_EQ(hack2.server_version, kProtocolVersion);

  RegisterPlanMsg reg;
  reg.grid = fx.g;
  reg.config = fx.cfg;
  reg.config.kernel_radius = 2.25;
  reg.config.reorder_tile = 512;
  reg.samples = fx.set;
  const auto reg2 = decode_register_plan(encode(reg));
  EXPECT_EQ(reg2.grid.dim, fx.g.dim);
  EXPECT_EQ(reg2.grid.n[0], fx.g.n[0]);
  EXPECT_EQ(reg2.grid.m[1], fx.g.m[1]);
  EXPECT_DOUBLE_EQ(reg2.grid.alpha, fx.g.alpha);
  EXPECT_DOUBLE_EQ(reg2.config.kernel_radius, 2.25);
  EXPECT_EQ(reg2.config.reorder_tile, 512);
  EXPECT_EQ(reg2.config.threads, fx.cfg.threads);
  EXPECT_EQ(reg2.config.use_simd, fx.cfg.use_simd);
  ASSERT_EQ(reg2.samples.count(), fx.set.count());
  EXPECT_EQ(reg2.samples.coords[0], fx.set.coords[0]);
  EXPECT_EQ(reg2.samples.coords[1], fx.set.coords[1]);

  RegisterAckMsg rack;
  rack.plan_id = 5;
  rack.resident_bytes = 123456;
  const auto rack2 = decode_register_ack(encode(rack));
  EXPECT_EQ(rack2.plan_id, 5u);
  EXPECT_EQ(rack2.resident_bytes, 123456u);

  SubmitMsg sub;
  sub.plan_id = 5;
  sub.op = WireOp::kAdjoint;
  sub.batch = 3;
  sub.deadline_ms = 250;
  sub.flags = kFlagBestEffort;
  sub.input = {{1.0f, -2.0f}, {0.5f, 0.25f}};
  const auto sub2 = decode_submit(encode(sub));
  EXPECT_EQ(sub2.plan_id, 5u);
  EXPECT_EQ(sub2.op, WireOp::kAdjoint);
  EXPECT_EQ(sub2.batch, 3u);
  EXPECT_EQ(sub2.deadline_ms, 250);
  EXPECT_EQ(sub2.flags, kFlagBestEffort);
  EXPECT_EQ(sub2.input, sub.input);

  ResultMsg res;
  res.queue_wait_us = 11;
  res.exec_us = 22;
  res.output = {{3.0f, 4.0f}};
  const auto res2 = decode_result(encode(res));
  EXPECT_EQ(res2.queue_wait_us, 11u);
  EXPECT_EQ(res2.exec_us, 22u);
  EXPECT_EQ(res2.output, res.output);

  ErrorMsg err;
  err.code = static_cast<std::int32_t>(ErrorCode::kOverloaded);
  err.message = "shed";
  const auto err2 = decode_error(encode(err));
  EXPECT_EQ(static_cast<ErrorCode>(err2.code), ErrorCode::kOverloaded);
  EXPECT_EQ(err2.message, "shed");

  StatsAckMsg st;
  st.counters = {{"accepted", 9}, {"tenant.a.completed", 4}};
  const auto st2 = decode_stats_ack(encode(st));
  ASSERT_EQ(st2.counters.size(), 2u);
  EXPECT_EQ(st2.counters[0].first, "accepted");
  EXPECT_EQ(st2.counters[1].second, 4u);

  UpdateSamplesMsg upd;
  upd.plan_id = 5;
  upd.samples = fx.set;
  const auto upd2 = decode_update_samples(encode(upd));
  EXPECT_EQ(upd2.plan_id, 5u);
  ASSERT_EQ(upd2.samples.count(), fx.set.count());
  EXPECT_EQ(upd2.samples.coords[0], fx.set.coords[0]);
  EXPECT_EQ(upd2.samples.coords[1], fx.set.coords[1]);

  UpdateAckMsg uack;
  uack.plan_id = 5;
  uack.generation = 3;
  uack.path = WireUpdatePath::kWarm;
  uack.resident_bytes = 4096;
  const auto uack2 = decode_update_ack(encode(uack));
  EXPECT_EQ(uack2.plan_id, 5u);
  EXPECT_EQ(uack2.generation, 3u);
  EXPECT_EQ(uack2.path, WireUpdatePath::kWarm);
  EXPECT_EQ(uack2.resident_bytes, 4096u);
}

TEST(Protocol, TruncatedBodiesAreRejectedNotOverRead) {
  Fixture fx = make_fixture();
  RegisterPlanMsg reg;
  reg.grid = fx.g;
  reg.config = fx.cfg;
  reg.samples = fx.set;
  const Bytes full = encode(reg);

  // Chopping the body anywhere must throw kIoCorruption (truncation) or
  // kInvalidInput (a value check fired first) — never read out of bounds.
  for (std::size_t n = 0; n < full.size(); n += 97) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n));
    try {
      decode_register_plan(cut);
      ADD_FAILURE() << "truncated body accepted at " << n;
    } catch (const Error& e) {
      EXPECT_TRUE(e.code() == ErrorCode::kIoCorruption || e.code() == ErrorCode::kInvalidInput)
          << "at " << n;
    }
  }

  // A hostile array length cannot force a huge allocation.
  SubmitMsg sub;
  sub.input = {{1.0f, 1.0f}};
  Bytes b = encode(sub);
  const std::uint64_t absurd = 1ull << 60;
  std::memcpy(b.data() + b.size() - sizeof(cfloat) - sizeof(std::uint64_t), &absurd,
              sizeof(absurd));
  try {
    decode_submit(b);
    ADD_FAILURE() << "hostile array length accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoCorruption);
  }
}

// --- loopback end-to-end ----------------------------------------------------

TEST(ServeE2E, TwoTenantsMatchDirectExecutionBitwise) {
  Fixture fx = make_fixture();

  ServeConfig sc;
  sc.socket_path = unique_socket_path("e2e");
  sc.engine.workers = 2;
  sc.engine.threads_per_worker = 1;
  NufftServer server(sc);
  server.start();

  // Ground truth: the same plan applied directly in-process.
  Nufft direct(fx.g, fx.set, fx.cfg);
  std::vector<cfloat> want_fwd(static_cast<std::size_t>(fx.set.count()));
  std::vector<cfloat> want_adj(static_cast<std::size_t>(fx.g.image_elems()));
  direct.forward(fx.image.data(), want_fwd.data());
  direct.adjoint(fx.raw.data(), want_adj.data());

  auto run_tenant = [&](const std::string& tenant) {
    NufftClient client;
    client.connect(sc.socket_path, tenant);
    EXPECT_TRUE(client.connected());
    const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
    EXPECT_GT(client.last_plan_bytes(), 0u);

    const auto fwd = client.forward(plan_id, fx.image);
    ASSERT_EQ(fwd.output.size(), want_fwd.size());
    EXPECT_EQ(std::memcmp(fwd.output.data(), want_fwd.data(),
                          want_fwd.size() * sizeof(cfloat)),
              0)
        << "forward result differs from direct execution for " << tenant;

    const auto adj = client.adjoint(plan_id, fx.raw);
    ASSERT_EQ(adj.output.size(), want_adj.size());
    EXPECT_EQ(std::memcmp(adj.output.data(), want_adj.data(),
                          want_adj.size() * sizeof(cfloat)),
              0)
        << "adjoint result differs from direct execution for " << tenant;
  };

  // Two tenants in parallel against one server; both must see exact results.
  std::thread ta([&] { run_tenant("tenant-a"); });
  std::thread tb([&] { run_tenant("tenant-b"); });
  ta.join();
  tb.join();

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
  const auto ts = server.tenant_stats();
  ASSERT_TRUE(ts.count("tenant-a"));
  ASSERT_TRUE(ts.count("tenant-b"));
  EXPECT_EQ(ts.at("tenant-a").completed, 2u);
  EXPECT_EQ(ts.at("tenant-b").completed, 2u);

  server.stop();
  EXPECT_FALSE(std::filesystem::exists(sc.socket_path));
}

TEST(ServeE2E, UpdateSamplesStreamsNewTrajectoryThroughTheHandle) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("upd");
  sc.engine.workers = 1;
  sc.engine.threads_per_worker = 1;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "tenant-a");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  // Bitwise-identical coordinates are a no-op: same handle, generation 0.
  const auto noop = client.update_samples(plan_id, fx.set);
  EXPECT_EQ(noop.plan_id, plan_id);
  EXPECT_EQ(noop.generation, 0u);
  EXPECT_EQ(noop.path, WireUpdatePath::kNoop);

  // Real update: jitter 5% of samples; the handle must then serve results
  // bitwise-equal to a fresh in-process plan built on the new trajectory.
  const auto moved = jitter_set(fx.set, 0.05, 99);
  const auto ack = client.update_samples(plan_id, moved);
  EXPECT_EQ(ack.plan_id, plan_id);
  EXPECT_EQ(ack.generation, 1u);
  EXPECT_NE(ack.path, WireUpdatePath::kNoop);
  EXPECT_GT(ack.resident_bytes, 0u);
  EXPECT_EQ(client.last_plan_bytes(), ack.resident_bytes);

  Nufft direct(fx.g, moved, fx.cfg);
  std::vector<cfloat> want_fwd(static_cast<std::size_t>(moved.count()));
  std::vector<cfloat> want_adj(static_cast<std::size_t>(fx.g.image_elems()));
  direct.forward(fx.image.data(), want_fwd.data());
  direct.adjoint(fx.raw.data(), want_adj.data());

  const auto fwd = client.forward(plan_id, fx.image);
  ASSERT_EQ(fwd.output.size(), want_fwd.size());
  EXPECT_EQ(std::memcmp(fwd.output.data(), want_fwd.data(), want_fwd.size() * sizeof(cfloat)),
            0)
      << "forward result differs from direct execution on the updated trajectory";

  const auto adj = client.adjoint(plan_id, fx.raw);
  ASSERT_EQ(adj.output.size(), want_adj.size());
  EXPECT_EQ(std::memcmp(adj.output.data(), want_adj.data(), want_adj.size() * sizeof(cfloat)),
            0)
      << "adjoint result differs from direct execution on the updated trajectory";

  // Unknown handles are rejected without killing the session.
  try {
    client.update_samples(plan_id + 41, moved);
    FAIL() << "expected kInvalidInput for an unknown plan handle";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
  client.ping();

  const auto stats = server.stats();
  EXPECT_EQ(stats.plans_updated, 2u);  // no-op and real update both acked
  EXPECT_EQ(counter_value(client.server_stats(), "plans_updated"), 2u);

  server.stop();
}

TEST(ServeE2E, BacklogCapShedsWithOverloadedCode) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("shed");
  sc.engine.workers = 1;
  // A zero-length admitted queue sheds every submit deterministically.
  sc.default_tenant.max_queued = 0;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "greedy");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  try {
    client.forward(plan_id, fx.image);
    FAIL() << "expected overload shed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  // The connection survives a shed — the next RPC still works.
  const auto counters = client.server_stats();
  EXPECT_EQ(counter_value(counters, "shed_overload"), 1u);
  EXPECT_EQ(counter_value(counters, "completed"), 0u);
  server.stop();
}

TEST(ServeE2E, RegistryQuotaRejectsSecondPlanAsOverloaded) {
  Fixture fx = make_fixture(7);
  Fixture fx2 = make_fixture(7);
  fx2.cfg.reorder = !fx.cfg.reorder;  // different PlanConfig → different key
  ServeConfig sc;
  sc.socket_path = unique_socket_path("quota");
  sc.registry.tenant_max_plans = 1;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "quota-tenant");
  client.register_plan(fx.g, fx.set, fx.cfg);
  try {
    client.register_plan(fx2.g, fx2.set, fx2.cfg);
    FAIL() << "expected quota rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }

  // A second tenant is unaffected by the first tenant's exhausted quota.
  NufftClient other;
  other.connect(sc.socket_path, "other-tenant");
  const auto plan_id = other.register_plan(fx2.g, fx2.set, fx2.cfg);
  const auto res = other.forward(plan_id, fx2.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx2.set.count()));
  server.stop();
}

TEST(ServeE2E, ExpiredDeadlineFailsAsTimeoutButBestEffortDegrades) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("deadline");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "deadline-tenant");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  // deadline 0: already expired when the dispatcher reaches it → kTimeout
  // without ever entering the engine.
  RunOptions strict;
  strict.deadline_ms = 0;
  try {
    client.forward(plan_id, fx.image, 1, strict);
    FAIL() << "expected deadline timeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }

  // The same impossible budget with best-effort degrades instead: the
  // request runs without a deadline and completes.
  RunOptions lax;
  lax.deadline_ms = 0;
  lax.best_effort = true;
  const auto res = client.forward(plan_id, fx.image, 1, lax);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));

  const auto ts = server.tenant_stats();
  EXPECT_GE(ts.at("deadline-tenant").deadline_missed, 1u);
  server.stop();
}

TEST(ServeE2E, InvalidSubmitsAreRejectedWithoutKillingTheSession) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("invalid");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "t");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  try {
    client.forward(9999, fx.image);
    FAIL() << "expected unknown-plan rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }

  std::vector<cfloat> short_input(3);
  try {
    client.forward(plan_id, short_input);
    FAIL() << "expected size-mismatch rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }

  // The session is intact after both semantic errors.
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  server.stop();
}

TEST(ServeE2E, TolerancePlannedRequestMatchesDirectExecutionBitwise) {
  // Accuracy-first planning over the wire: the client ships only the kernel
  // family and a tolerance; the server resolves both to the calibrated
  // kernel parameters and the result must be bitwise identical to the same
  // tolerance-planned transform run in-process.
  Fixture fx = make_fixture();
  fx.cfg.kernel = kernels::KernelType::kEs;
  fx.cfg.tolerance = 1e-4;

  ServeConfig sc;
  sc.socket_path = unique_socket_path("tolplan");
  NufftServer server(sc);
  server.start();

  Nufft direct(fx.g, fx.set, fx.cfg);
  std::vector<cfloat> want_fwd(static_cast<std::size_t>(fx.set.count()));
  direct.forward(fx.image.data(), want_fwd.data());

  NufftClient client;
  client.connect(sc.socket_path, "tol-tenant");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto fwd = client.forward(plan_id, fx.image);
  ASSERT_EQ(fwd.output.size(), want_fwd.size());
  EXPECT_EQ(std::memcmp(fwd.output.data(), want_fwd.data(), want_fwd.size() * sizeof(cfloat)),
            0);
  server.stop();
}

TEST(ServeE2E, UnachievableToleranceFailsOverTheWireAsTerminal) {
  // A tolerance tighter than the calibration table must come back across
  // the wire carrying kUnachievableAccuracy — and the taxonomy classifies
  // it terminal, so the resilient client will not retry it.
  Fixture fx = make_fixture();
  fx.cfg.tolerance = 1e-12;

  ServeConfig sc;
  sc.socket_path = unique_socket_path("toobright");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "tol-tenant");
  try {
    client.register_plan(fx.g, fx.set, fx.cfg);
    FAIL() << "expected unachievable-tolerance rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnachievableAccuracy);
    EXPECT_EQ(retry_class(e.code()), RetryClass::kTerminal);
  }

  // The session survives; a sane tolerance registers fine afterwards.
  fx.cfg.tolerance = 1e-3;
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  server.stop();
}

TEST(ServeE2E, GarbageBytesGetAnErrorReplyAndTheConnectionCloses) {
  ServeConfig sc;
  sc.socket_path = unique_socket_path("garbage");
  NufftServer server(sc);
  server.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sc.socket_path.c_str(), sc.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::uint8_t garbage[64];
  for (std::size_t i = 0; i < sizeof(garbage); ++i) garbage[i] = static_cast<std::uint8_t>(i * 37 + 1);
  ASSERT_EQ(::write(fd, garbage, sizeof(garbage)), static_cast<ssize_t>(sizeof(garbage)));

  // The server answers with a well-formed kError frame, then closes.
  Bytes rx;
  std::uint8_t chunk[4096];
  for (;;) {
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    rx.insert(rx.end(), chunk, chunk + n);
  }
  ::close(fd);

  Frame f;
  ASSERT_GT(try_decode_frame(rx.data(), rx.size(), f), 0u);
  EXPECT_EQ(f.type, MsgType::kError);
  const ErrorMsg e = decode_error(f.body);
  EXPECT_EQ(static_cast<ErrorCode>(e.code), ErrorCode::kIoCorruption);
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.stop();
}

TEST(ServeE2E, OversizedResultPayloadIsRejectedNotFatal) {
  Fixture fx = make_fixture();
  // A plan with many more samples than image pixels: a modest forward batch
  // would yield a ResultMsg beyond the frame cap. The server must reject the
  // submit at admission with kInvalidInput — not hit the cap while encoding
  // the result on the poll thread, where the exception would be fatal.
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 500000, 11);
  ServeConfig sc;
  sc.socket_path = unique_socket_path("bigout");
  sc.default_tenant.max_pending_bytes = 0;  // isolate the frame-cap check
  sc.max_pending_bytes_total = 0;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "big");
  const auto plan_id = client.register_plan(fx.g, set, fx.cfg);

  const auto out_elems = static_cast<std::uint64_t>(set.count());
  const auto batch =
      static_cast<std::uint32_t>(kMaxBody / (out_elems * sizeof(cfloat)) + 2);
  std::vector<cfloat> input(static_cast<std::size_t>(batch) *
                            static_cast<std::size_t>(fx.g.image_elems()));
  try {
    client.forward(plan_id, input, batch);
    FAIL() << "expected frame-cap rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }

  // Both the connection and the server survive the rejection.
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(set.count()));
  server.stop();
}

TEST(ServeE2E, PayloadByteBudgetBoundsPinnedMemory) {
  Fixture fx = make_fixture();
  const std::size_t per_req = (static_cast<std::size_t>(fx.g.image_elems()) +
                               static_cast<std::size_t>(fx.set.count())) *
                              sizeof(cfloat);
  ServeConfig sc;
  sc.socket_path = unique_socket_path("bytes");
  // Budget admits exactly one single-batch request; a batch of two can never
  // fit, no matter how empty the queue is.
  sc.default_tenant.max_pending_bytes = per_req + per_req / 2;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "metered");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  std::vector<cfloat> two(static_cast<std::size_t>(fx.g.image_elems()) * 2);
  try {
    client.forward(plan_id, two, 2);
    FAIL() << "expected payload-budget rejection";
  } catch (const Error& e) {
    // Permanently over budget is a client error, not a retryable overload.
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }

  // Single-batch requests fit — and keep fitting: completion releases the
  // byte charge (a leak would shed the second iteration as kOverloaded).
  for (int i = 0; i < 4; ++i) {
    const auto res = client.forward(plan_id, fx.image);
    EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  }
  EXPECT_EQ(server.stats().shed_overload, 1u);
  server.stop();
}

TEST(ServeE2E, PlanHandleCapDropsLeastRecentlyUsed) {
  Fixture fx = make_fixture();
  Fixture fx2 = make_fixture();
  fx2.cfg.reorder = !fx.cfg.reorder;  // different PlanConfig → different plan
  ServeConfig sc;
  sc.socket_path = unique_socket_path("plancap");
  sc.default_tenant.max_plans = 1;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "capped");
  const auto plan_a = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto plan_b = client.register_plan(fx2.g, fx2.set, fx2.cfg);
  EXPECT_EQ(server.stats().plans_dropped, 1u);

  // The LRU handle was dropped; the newest registration still works.
  try {
    client.forward(plan_a, fx.image);
    FAIL() << "expected dropped-handle rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
  const auto res = client.forward(plan_b, fx2.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx2.set.count()));
  server.stop();
}

TEST(ServeE2E, TenantRecordsAreGarbageCollectedOnDisconnect) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("gc");
  NufftServer server(sc);
  server.start();

  // A client cycling distinct Hello names must not grow the tenant maps
  // without bound: each record is reaped once its connection closes.
  for (int i = 0; i < 16; ++i) {
    NufftClient client;
    client.connect(sc.socket_path, "cycler-" + std::to_string(i));
    client.close();
  }
  for (int i = 0; i < 500 && server.tenant_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.tenant_count(), 0u);

  // A tenant with a live session still functions after the churn.
  NufftClient client;
  client.connect(sc.socket_path, "steady");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  EXPECT_EQ(server.tenant_count(), 1u);
  server.stop();
}

TEST(ServeE2E, HalfCloseStillDrainsBufferedFrames) {
  ServeConfig sc;
  sc.socket_path = unique_socket_path("eof");
  NufftServer server(sc);
  server.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sc.socket_path.c_str(), sc.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Hello + Stats written back-to-back, then the write side closes. Frames
  // that arrive together with (or before) the EOF must still be decoded and
  // answered — a half-closing client gets its responses, not silence.
  Bytes wire;
  encode_frame(wire, MsgType::kHello, 1, encode(HelloMsg{"eof-tenant"}));
  Bytes stats_frame;
  encode_frame(stats_frame, MsgType::kStats, 2, Bytes{});
  wire.insert(wire.end(), stats_frame.begin(), stats_frame.end());
  ASSERT_EQ(::write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  Bytes rx;
  std::uint8_t chunk[4096];
  for (;;) {
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    rx.insert(rx.end(), chunk, chunk + n);
  }
  ::close(fd);

  Frame f1;
  const auto c1 = try_decode_frame(rx.data(), rx.size(), f1);
  ASSERT_GT(c1, 0u);
  EXPECT_EQ(f1.type, MsgType::kHelloAck);
  Frame f2;
  ASSERT_GT(try_decode_frame(rx.data() + c1, rx.size() - c1, f2), 0u);
  EXPECT_EQ(f2.type, MsgType::kStatsAck);
  server.stop();
}

TEST(ServeE2E, ConcurrentMixedLoadKeepsAccountingConsistent) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("mixed");
  sc.engine.workers = 2;
  sc.default_tenant.max_inflight = 1;
  sc.default_tenant.max_queued = 2;
  sc.tenants["heavy"] = TenantPolicy{/*weight=*/3, /*max_inflight=*/2, /*max_queued=*/4};
  NufftServer server(sc);
  server.start();

  constexpr int kThreads = 4;
  constexpr int kReqs = 8;
  std::atomic<int> ok{0}, shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      NufftClient client;
      client.connect(sc.socket_path, t % 2 == 0 ? "heavy" : "light");
      const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
      for (int i = 0; i < kReqs; ++i) {
        try {
          const auto res = client.forward(plan_id, fx.image);
          if (res.output.size() == static_cast<std::size_t>(fx.set.count())) ++ok;
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
          ++shed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto st = server.stats();
  EXPECT_EQ(ok.load() + shed.load(), kThreads * kReqs);
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(st.shed_overload, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(st.accepted, st.completed + st.failed);
  EXPECT_GT(st.completed, 0u);
  server.stop();
}

// --- lifecycle & resilience -------------------------------------------------

TEST(ServeLifecycle, PingHealthAndGracefulDrain) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("drain");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "life");
  client.ping();
  const auto ready = client.health();
  EXPECT_EQ(ready.state, WireHealth::kReady);
  EXPECT_EQ(ready.accepting, 1);
  EXPECT_EQ(ready.connections, 1u);

  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto ack = client.drain_server(200);
  EXPECT_EQ(ack.state, WireHealth::kDraining);
  EXPECT_TRUE(server.draining());

  // No new work while draining — rejected with the reconnect-retryable code.
  try {
    client.forward(plan_id, fx.image);
    FAIL() << "expected drain rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(retry_class(e.code()), RetryClass::kAfterReconnect);
  }

  // Liveness endpoints keep answering on existing connections...
  client.ping();
  const auto draining = client.health();
  EXPECT_EQ(draining.state, WireHealth::kDraining);
  EXPECT_EQ(draining.accepting, 0);

  // ...but new connections are refused outright.
  NufftClient late;
  EXPECT_THROW(late.connect(sc.socket_path, "late"), Error);

  for (int i = 0; i < 500 && !server.drain_complete(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(server.drain_complete());
  EXPECT_EQ(server.health(), WireHealth::kDraining);
  EXPECT_GE(server.stats().drain_rejected, 1u);
  server.stop();
}

TEST(ServeLifecycle, DrainDeadlineCancelsBacklogExactlyOnce) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("cancel");
  sc.engine.workers = 1;
  sc.engine.threads_per_worker = 1;
  NufftServer server(sc);
  server.start();

  // Register through a normal client; plan handles are per tenant, so the
  // raw connection below can submit against the returned id.
  NufftClient reg;
  reg.connect(sc.socket_path, "cancel-tenant");
  const auto plan_id = reg.register_plan(fx.g, fx.set, fx.cfg);

  // Pipeline Hello + a deep backlog + Drain{1 ms} in one write: the drain is
  // handled with the submits still queued, and a 1 ms budget cannot flush
  // them — the remainder must come back kCancelled, one response per submit.
  constexpr std::uint32_t kBatch = 8;
  constexpr std::uint64_t kReqs = 48;
  HelloMsg hello;
  hello.tenant = "cancel-tenant";
  hello.client_id = 0;  // no replay identity: every response goes to the wire
  Bytes wire;
  encode_frame(wire, MsgType::kHello, 1, encode(hello));
  SubmitMsg sub;
  sub.plan_id = plan_id;
  sub.op = WireOp::kForward;
  sub.batch = kBatch;
  sub.input.assign(static_cast<std::size_t>(kBatch) *
                       static_cast<std::size_t>(fx.g.image_elems()),
                   cfloat{1.0f, 0.0f});
  const Bytes sub_body = encode(sub);
  for (std::uint64_t r = 0; r < kReqs; ++r) {
    encode_frame(wire, MsgType::kSubmit, 100 + r, sub_body);
  }
  DrainMsg d;
  d.deadline_ms = 1;
  encode_frame(wire, MsgType::kDrain, 2, encode(d));

  const int fd = raw_connect(sc.socket_path);
  ASSERT_TRUE(write_some(fd, wire));
  const auto frames = read_frames(fd, kReqs + 2);
  ::close(fd);
  ASSERT_EQ(frames.size(), kReqs + 2);

  std::uint64_t results = 0, cancelled = 0;
  bool saw_drain_ack = false;
  for (const auto& f : frames) {
    if (f.type == MsgType::kResult) ++results;
    if (f.type == MsgType::kDrainAck) saw_drain_ack = true;
    if (f.type == MsgType::kError) {
      const auto e = decode_error(f.body);
      EXPECT_EQ(static_cast<ErrorCode>(e.code), ErrorCode::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_TRUE(saw_drain_ack);
  // Exactly one response per submit — nothing lost, nothing duplicated.
  EXPECT_EQ(results + cancelled, kReqs);
  EXPECT_GT(cancelled, 0u);

  for (int i = 0; i < 500 && !server.drain_complete(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(server.drain_complete());
  const auto st = server.stats();
  EXPECT_EQ(st.completed, results);
  EXPECT_EQ(st.drain_cancelled, cancelled);
  server.stop();
}

TEST(ServeLifecycle, SigtermTriggersGracefulDrain) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("sigterm");
  sc.drain_on_sigterm = true;
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "sig");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));

  ASSERT_EQ(std::raise(SIGTERM), 0);
  for (int i = 0; i < 500 && !server.draining(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(server.draining());
  try {
    client.forward(plan_id, fx.image);
    FAIL() << "expected drain rejection after SIGTERM";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  for (int i = 0; i < 500 && !server.drain_complete(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(server.drain_complete());
  server.stop();
}

TEST(ServeLifecycle, IdleConnectionsAreReapedAndTheClientReconnects) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("idle");
  sc.idle_timeout = std::chrono::milliseconds(100);
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "idler");
  for (int i = 0; i < 500 && server.stats().idle_closed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().idle_closed, 1u);

  // The next RPC hits the dead transport, reconnects under the same
  // client_id with backoff, and completes transparently.
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  EXPECT_GE(client.reconnects(), 1u);
  server.stop();
}

TEST(ServeLifecycle, SlowReadersAreDisconnectedAtTheWriteBufferCap) {
  ServeConfig sc;
  sc.socket_path = unique_socket_path("slow");
  sc.max_wbuf_bytes = 4096;
  NufftServer server(sc);
  server.start();

  // Thousands of pipelined Stats requests without reading a byte back: once
  // the kernel socket buffer fills, the server-side write buffer crosses the
  // cap and the connection is cut instead of growing without bound.
  Bytes wire;
  encode_frame(wire, MsgType::kHello, 1, encode(HelloMsg{"slow"}));
  for (std::uint64_t r = 2; r < 4002; ++r) {
    encode_frame(wire, MsgType::kStats, r, Bytes{});
  }
  const int fd = raw_connect(sc.socket_path);
  write_some(fd, wire);  // may fail mid-write once the server hangs up
  for (int i = 0; i < 500 && server.stats().slow_reader_closed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().slow_reader_closed, 1u);
  ::close(fd);
  server.stop();
}

TEST(ServeLifecycle, ReplayCacheMakesResubmissionExactlyOnce) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("replay");
  NufftServer server(sc);
  server.start();

  // An anchor connection keeps the tenant record (and with it the replay
  // cache) alive across the raw connection's crash-and-reconnect below.
  NufftClient anchor;
  anchor.connect(sc.socket_path, "replay-tenant");
  const auto plan_id = anchor.register_plan(fx.g, fx.set, fx.cfg);

  HelloMsg hello;
  hello.tenant = "replay-tenant";
  hello.client_id = 42;
  SubmitMsg sub;
  sub.plan_id = plan_id;
  sub.op = WireOp::kForward;
  sub.batch = 1;
  sub.input.assign(fx.image.begin(), fx.image.end());
  Bytes submit_frame;
  encode_frame(submit_frame, MsgType::kSubmit, 7, encode(sub));

  auto round = [&]() -> Bytes {
    const int fd = raw_connect(sc.socket_path);
    Bytes wire;
    encode_frame(wire, MsgType::kHello, 1, encode(hello));
    wire.insert(wire.end(), submit_frame.begin(), submit_frame.end());
    EXPECT_TRUE(write_some(fd, wire));
    const auto frames = read_frames(fd, 2);
    ::close(fd);
    if (frames.size() != 2 || frames[1].type != MsgType::kResult) {
      ADD_FAILURE() << "expected HelloAck + Result, got " << frames.size() << " frames";
      return {};
    }
    EXPECT_EQ(frames[1].request_id, 7u);
    return frames[1].body;
  };

  // Same identity, same request id, fresh connection: the duplicate must be
  // served from the replay cache — byte-identical, without re-executing.
  const Bytes first = round();
  const Bytes second = round();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  const auto st = server.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.replays, 1u);
  server.stop();
}

}  // namespace
}  // namespace nufft::serve
