// Unit and property tests for the FFT substrate: Stockham power-of-two path,
// Bluestein arbitrary-length path, multi-dimensional row-column transform.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fft/fft1d.hpp"
#include "fft/fftnd.hpp"
#include "fft/twiddle.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::fft {
namespace {

// O(n²) reference DFT in double precision.
template <class T>
std::vector<cdouble> naive_dft(const std::complex<T>* in, std::size_t n, int sign) {
  std::vector<cdouble> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double a = sign * kTwoPi * static_cast<double>(k) * static_cast<double>(j) /
                       static_cast<double>(n);
      acc += cdouble(in[j].real(), in[j].imag()) * cdouble(std::cos(a), std::sin(a));
    }
    out[k] = acc;
  }
  return out;
}

template <class T>
aligned_vector<std::complex<T>> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  aligned_vector<std::complex<T>> v(n);
  for (auto& x : v) {
    x = std::complex<T>(static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1)));
  }
  return v;
}

template <class T>
double rel_err_vs(const std::complex<T>* got, const std::vector<cdouble>& want) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const cdouble d = cdouble(got[i].real(), got[i].imag()) - want[i];
    num += std::norm(d);
    den += std::norm(want[i]);
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

TEST(Twiddle, UnitCircleValues) {
  auto tw = make_twiddles<double>(8, 8, -1);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(std::abs(tw[k]), 1.0, 1e-15);
    EXPECT_NEAR(std::arg(tw[k]), std::remainder(-kTwoPi * k / 8.0, kTwoPi), 1e-12);
  }
}

TEST(Fft1d, LengthOneIsIdentity) {
  Fft1d<double> plan(1, Direction::kForward);
  cdouble in(3, -4), out(0, 0);
  aligned_vector<cdouble> scratch(plan.scratch_size() + 1);
  plan.transform(&in, &out, scratch.data());
  EXPECT_EQ(out, in);
}

TEST(Fft1d, IsPow2Helper) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(640));
}

TEST(Fft1d, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(640), 1024u);
}

// ---- parameterized accuracy sweep over lengths (pow2 and Bluestein) ----

class FftLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLength, ForwardMatchesNaiveDftDouble) {
  const std::size_t n = GetParam();
  auto sig = random_signal<double>(n, 100 + n);
  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  EXPECT_LT(rel_err_vs(out.data(), naive_dft(sig.data(), n, -1)), 1e-11) << "n=" << n;
}

TEST_P(FftLength, InverseMatchesNaiveDftDouble) {
  const std::size_t n = GetParam();
  auto sig = random_signal<double>(n, 200 + n);
  Fft1d<double> plan(n, Direction::kInverse);
  aligned_vector<cdouble> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  EXPECT_LT(rel_err_vs(out.data(), naive_dft(sig.data(), n, +1)), 1e-11) << "n=" << n;
}

TEST_P(FftLength, SinglePrecisionAccuracy) {
  const std::size_t n = GetParam();
  auto sig = random_signal<float>(n, 300 + n);
  Fft1d<float> plan(n, Direction::kForward);
  aligned_vector<cfloat> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  EXPECT_LT(rel_err_vs(out.data(), naive_dft(sig.data(), n, -1)), 2e-5) << "n=" << n;
}

TEST_P(FftLength, RoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  auto sig = random_signal<double>(n, 400 + n);
  Fft1d<double> fwd(n, Direction::kForward);
  Fft1d<double> inv(n, Direction::kInverse);
  aligned_vector<cdouble> mid(n), back(n);
  aligned_vector<cdouble> scratch(std::max(fwd.scratch_size(), inv.scratch_size()));
  fwd.transform(sig.data(), mid.data(), scratch.data());
  inv.transform(mid.data(), back.data(), scratch.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(back[i].real() / static_cast<double>(n), sig[i].real(), 1e-11);
    ASSERT_NEAR(back[i].imag() / static_cast<double>(n), sig[i].imag(), 1e-11);
  }
}

TEST_P(FftLength, InPlaceMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  auto sig = random_signal<double>(n, 500 + n);
  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  aligned_vector<cdouble> inplace = sig;
  plan.transform_inplace(inplace.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(inplace[i] - out[i]), 0.0, 1e-12);
  }
}

TEST_P(FftLength, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto sig = random_signal<double>(n, 600 + n);
  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  double e_time = 0, e_freq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    e_time += std::norm(sig[i]);
    e_freq += std::norm(out[i]);
  }
  EXPECT_NEAR(e_freq, e_time * static_cast<double>(n), 1e-8 * e_freq + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLength,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 13, 16, 30, 32, 64, 100, 128,
                                           160, 240, 256, 320, 344, 480, 512, 640),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

TEST(Fft1d, LinearityProperty) {
  const std::size_t n = 128;
  auto a = random_signal<double>(n, 1);
  auto b = random_signal<double>(n, 2);
  const cdouble alpha(1.5, -0.5), beta(-2.0, 0.25);
  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> fa(n), fb(n), fc(n), combo(n), scratch(plan.scratch_size());
  plan.transform(a.data(), fa.data(), scratch.data());
  plan.transform(b.data(), fb.data(), scratch.data());
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * a[i] + beta * b[i];
  plan.transform(combo.data(), fc.data(), scratch.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(fc[i] - (alpha * fa[i] + beta * fb[i])), 0.0, 1e-10);
  }
}

TEST(Fft1d, ImpulseGivesFlatSpectrum) {
  const std::size_t n = 64;
  aligned_vector<cdouble> sig(n, cdouble(0, 0));
  sig[0] = cdouble(1, 0);
  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(out[i].real(), 1.0, 1e-12);
    ASSERT_NEAR(out[i].imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, ShiftedImpulseGivesTwiddleRamp) {
  const std::size_t n = 32;
  aligned_vector<cdouble> sig(n, cdouble(0, 0));
  sig[1] = cdouble(1, 0);
  Fft1d<double> plan(n, Direction::kForward);
  aligned_vector<cdouble> out(n), scratch(plan.scratch_size());
  plan.transform(sig.data(), out.data(), scratch.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double a = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    ASSERT_NEAR(out[k].real(), std::cos(a), 1e-12);
    ASSERT_NEAR(out[k].imag(), std::sin(a), 1e-12);
  }
}

// ---- multi-dimensional ----

TEST(FftNd, TwoDMatchesSeparableNaive) {
  const std::size_t n0 = 12, n1 = 16;
  auto sig = random_signal<double>(n0 * n1, 7);
  FftNd<double> plan({n0, n1}, Direction::kForward);
  aligned_vector<cdouble> data = sig;
  plan.transform(data.data());
  // Naive 2D DFT.
  for (std::size_t k0 = 0; k0 < n0; ++k0) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      cdouble acc(0, 0);
      for (std::size_t j0 = 0; j0 < n0; ++j0) {
        for (std::size_t j1 = 0; j1 < n1; ++j1) {
          const double a = -kTwoPi * (static_cast<double>(k0 * j0) / n0 +
                                      static_cast<double>(k1 * j1) / n1);
          acc += sig[j0 * n1 + j1] * cdouble(std::cos(a), std::sin(a));
        }
      }
      ASSERT_NEAR(std::abs(data[k0 * n1 + k1] - acc), 0.0, 1e-9);
    }
  }
}

TEST(FftNd, ThreeDRoundTrip) {
  const std::size_t n = 8;
  auto sig = random_signal<float>(n * n * n, 9);
  FftNd<float> fwd({n, n, n}, Direction::kForward);
  FftNd<float> inv({n, n, n}, Direction::kInverse);
  aligned_vector<cfloat> data = sig;
  fwd.transform(data.data());
  inv.transform(data.data());
  const float scale = static_cast<float>(n * n * n);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(data[i].real() / scale, sig[i].real(), 1e-5);
    ASSERT_NEAR(data[i].imag() / scale, sig[i].imag(), 1e-5);
  }
}

TEST(FftNd, AnisotropicDimsRoundTrip) {
  const std::size_t d0 = 4, d1 = 10, d2 = 16;
  auto sig = random_signal<double>(d0 * d1 * d2, 10);
  FftNd<double> fwd({d0, d1, d2}, Direction::kForward);
  FftNd<double> inv({d0, d1, d2}, Direction::kInverse);
  aligned_vector<cdouble> data = sig;
  fwd.transform(data.data());
  inv.transform(data.data());
  const double scale = static_cast<double>(d0 * d1 * d2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(std::abs(data[i] / scale - sig[i]), 0.0, 1e-11);
  }
}

TEST(FftNd, ThreadCountDoesNotChangeResult) {
  const std::size_t n = 16;
  auto sig = random_signal<float>(n * n * n, 11);
  FftNd<float> plan({n, n, n}, Direction::kForward);

  aligned_vector<cfloat> serial = sig;
  plan.transform(serial.data());

  for (int threads : {2, 4, 7}) {
    ThreadPool pool(threads);
    aligned_vector<cfloat> parallel = sig;
    plan.transform(parallel.data(), pool);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i], serial[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(FftNd, SeparableImpulseIn3d) {
  const std::size_t n = 8;
  aligned_vector<cdouble> data(n * n * n, cdouble(0, 0));
  data[0] = cdouble(1, 0);
  FftNd<double> plan({n, n, n}, Direction::kForward);
  plan.transform(data.data());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(data[i].real(), 1.0, 1e-12);
    ASSERT_NEAR(data[i].imag(), 0.0, 1e-12);
  }
}

TEST(FftNd, OneDimensionalDegenerateCase) {
  const std::size_t n = 64;
  auto sig = random_signal<double>(n, 12);
  FftNd<double> plan({n}, Direction::kForward);
  aligned_vector<cdouble> data = sig;
  plan.transform(data.data());
  EXPECT_LT(rel_err_vs(data.data(), naive_dft(sig.data(), n, -1)), 1e-12);
}

}  // namespace
}  // namespace nufft::fft
