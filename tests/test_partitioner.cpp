// Tests for the geometric partitioner (Fig. 4/5): histogram correctness,
// coverage, minimum widths, even counts, balance of variable-width cuts.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "parallel/partitioner.hpp"

namespace nufft {
namespace {

fvec gaussian_coords(index_t count, index_t extent, std::uint64_t seed) {
  Rng rng(seed);
  fvec v(static_cast<std::size_t>(count));
  const double c = 0.5 * static_cast<double>(extent);
  for (auto& x : v) {
    double w;
    do {
      w = rng.normal(c, static_cast<double>(extent) / 7.0);
    } while (w < 0.0 || w >= static_cast<double>(extent));
    x = static_cast<float>(w);
  }
  return v;
}

fvec uniform_coords(index_t count, index_t extent, std::uint64_t seed) {
  Rng rng(seed);
  fvec v(static_cast<std::size_t>(count));
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.0, static_cast<double>(extent)));
  return v;
}

TEST(CumulativeHistogram, CountsBelowEachBoundary) {
  fvec coords = {0.5f, 0.9f, 1.2f, 3.7f, 3.9f, 7.999f};
  const auto h = cumulative_histogram(coords.data(), static_cast<index_t>(coords.size()), 8);
  ASSERT_EQ(h.size(), 9u);
  EXPECT_EQ(h[0], 0);
  EXPECT_EQ(h[1], 2);  // coords < 1
  EXPECT_EQ(h[2], 3);  // coords < 2
  EXPECT_EQ(h[4], 5);
  EXPECT_EQ(h[8], 6);
}

TEST(CumulativeHistogram, ClampsOutOfRangeCoordinates) {
  fvec coords = {-1.0f, 100.0f};
  const auto h = cumulative_histogram(coords.data(), 2, 8);
  EXPECT_EQ(h[8], 2);  // both samples binned (into the edge cells)
}

struct LayoutCase {
  index_t extent;
  int target;
  index_t min_width;
};

class VariableLayout : public ::testing::TestWithParam<std::tuple<index_t, int, index_t, int>> {
};

TEST_P(VariableLayout, InvariantsHold) {
  const auto [extent, target, min_width, seed] = GetParam();
  const index_t count = 5000;
  fvec cx = gaussian_coords(count, extent, static_cast<std::uint64_t>(seed));
  fvec cy = uniform_coords(count, extent, static_cast<std::uint64_t>(seed) + 1);

  const std::array<index_t, 3> ext{extent, extent, 1};
  const std::array<const float*, 3> coords{cx.data(), cy.data(), nullptr};
  const auto layout = make_variable_layout(2, ext, coords, count, target, min_width);

  for (int d = 0; d < 2; ++d) {
    const auto& b = layout.bounds[static_cast<std::size_t>(d)];
    const int parts = layout.num_parts[static_cast<std::size_t>(d)];
    ASSERT_EQ(static_cast<int>(b.size()), parts + 1);
    // Coverage of [0, extent).
    EXPECT_EQ(b.front(), 0);
    EXPECT_EQ(b.back(), extent);
    // Strictly increasing, min width respected, even count (or 1).
    for (int p = 0; p < parts; ++p) {
      ASSERT_GE(b[static_cast<std::size_t>(p) + 1] - b[static_cast<std::size_t>(p)], min_width)
          << "dim " << d << " part " << p;
    }
    EXPECT_TRUE(parts == 1 || parts % 2 == 0) << "dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariableLayout,
    ::testing::Combine(::testing::Values<index_t>(64, 128, 257), ::testing::Values(2, 4, 8),
                       ::testing::Values<index_t>(5, 9, 17), ::testing::Values(1, 2)),
    [](const auto& info) {
      return "e" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(VariableLayoutBalance, DensityAdaptsPartitionWidths) {
  // Gaussian density: central partitions must be narrower than edge ones.
  const index_t extent = 256;
  const index_t count = 100000;
  fvec cx = gaussian_coords(count, extent, 5);
  const std::array<index_t, 3> ext{extent, 1, 1};
  const std::array<const float*, 3> coords{cx.data(), nullptr, nullptr};
  const auto layout = make_variable_layout(1, ext, coords, count, 8, 9);
  const auto& b = layout.bounds[0];
  const int parts = layout.num_parts[0];
  ASSERT_GE(parts, 4);
  index_t min_w = extent, max_w = 0;
  index_t central_w = 0;
  for (int p = 0; p < parts; ++p) {
    const index_t w = b[static_cast<std::size_t>(p) + 1] - b[static_cast<std::size_t>(p)];
    min_w = std::min(min_w, w);
    max_w = std::max(max_w, w);
    if (b[static_cast<std::size_t>(p)] <= extent / 2 &&
        extent / 2 < b[static_cast<std::size_t>(p) + 1]) {
      central_w = w;
    }
  }
  EXPECT_LT(central_w, max_w);  // center is denser → narrower
  EXPECT_GT(max_w, 2 * min_w);  // genuinely variable widths
}

TEST(VariableLayoutBalance, SampleCountsRoughlyEven) {
  const index_t extent = 128;
  const index_t count = 50000;
  fvec cx = gaussian_coords(count, extent, 9);
  const std::array<index_t, 3> ext{extent, 1, 1};
  const std::array<const float*, 3> coords{cx.data(), nullptr, nullptr};
  const int target = 8;
  const auto layout = make_variable_layout(1, ext, coords, count, target, 9);
  const auto hist = cumulative_histogram(cx.data(), count, extent);
  const auto& b = layout.bounds[0];
  const index_t avg = count / target;
  for (int p = 0; p + 1 < layout.num_parts[0]; ++p) {  // last part may be a remainder
    const index_t in_part = hist[static_cast<std::size_t>(b[static_cast<std::size_t>(p) + 1])] -
                            hist[static_cast<std::size_t>(b[static_cast<std::size_t>(p)])];
    // Fig. 5 grows from min width until >= avg: parts hold at least avg
    // unless clipped by the end of the grid.
    ASSERT_GE(in_part, avg) << "part " << p;
  }
}

TEST(FixedLayout, EqualWidthsAndCoverage) {
  const std::array<index_t, 3> ext{128, 128, 128};
  const auto layout = make_fixed_layout(3, ext, 4, 9);
  for (int d = 0; d < 3; ++d) {
    const auto& b = layout.bounds[static_cast<std::size_t>(d)];
    EXPECT_EQ(b.front(), 0);
    EXPECT_EQ(b.back(), 128);
    const int parts = layout.num_parts[static_cast<std::size_t>(d)];
    EXPECT_TRUE(parts == 1 || parts % 2 == 0);
    for (int p = 0; p < parts; ++p) {
      ASSERT_GE(b[static_cast<std::size_t>(p) + 1] - b[static_cast<std::size_t>(p)], 9);
    }
  }
}

TEST(FixedLayout, MinWidthDominatesWhenTargetTooLarge) {
  const std::array<index_t, 3> ext{32, 1, 1};
  const auto layout = make_fixed_layout(1, ext, 16, 9);
  // 32/16 = 2 < min_width 9 → width 9 → 3 full parts + remainder merge →
  // even count with all widths >= 9.
  for (int p = 0; p < layout.num_parts[0]; ++p) {
    ASSERT_GE(layout.bounds[0][static_cast<std::size_t>(p) + 1] -
                  layout.bounds[0][static_cast<std::size_t>(p)],
              9);
  }
  EXPECT_TRUE(layout.num_parts[0] == 1 || layout.num_parts[0] % 2 == 0);
}

TEST(Layout, LocateFindsContainingPartition) {
  const std::array<index_t, 3> ext{100, 1, 1};
  const auto layout = make_fixed_layout(1, ext, 4, 5);
  const auto& b = layout.bounds[0];
  for (float x = 0.0f; x < 100.0f; x += 0.37f) {
    const int p = layout.locate(0, x);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, layout.num_parts[0]);
    ASSERT_GE(x, static_cast<float>(b[static_cast<std::size_t>(p)]));
    ASSERT_LT(x, static_cast<float>(b[static_cast<std::size_t>(p) + 1]));
  }
}

TEST(Layout, FlattenRowMajor) {
  PartitionLayout layout;
  layout.dim = 3;
  layout.num_parts = {2, 3, 4};
  EXPECT_EQ(layout.flatten({0, 0, 0}), 0);
  EXPECT_EQ(layout.flatten({0, 0, 1}), 1);
  EXPECT_EQ(layout.flatten({0, 1, 0}), 4);
  EXPECT_EQ(layout.flatten({1, 0, 0}), 12);
  EXPECT_EQ(layout.flatten({1, 2, 3}), 23);
}

TEST(Layout, TotalParts) {
  PartitionLayout layout;
  layout.dim = 2;
  layout.num_parts = {4, 6, 1};
  EXPECT_EQ(layout.total_parts(), 24);
}

}  // namespace
}  // namespace nufft
