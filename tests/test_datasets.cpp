// Tests for the trajectory generators and Table I presets.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "datasets/presets.hpp"
#include "datasets/trajectory.hpp"

namespace nufft::datasets {
namespace {

class TrajectorySweep
    : public ::testing::TestWithParam<std::tuple<TrajectoryType, int>> {};

TEST_P(TrajectorySweep, CoordinatesInRangeAndCountsMatch) {
  const auto [type, dim] = GetParam();
  TrajectoryParams p;
  p.n = 32;
  p.k = 16;
  p.s = 50;
  const auto set = make_trajectory(type, dim, p);
  EXPECT_EQ(set.dim, dim);
  EXPECT_EQ(set.m, 64);
  EXPECT_EQ(set.count(), 16 * 50);
  for (int d = 0; d < dim; ++d) {
    ASSERT_EQ(static_cast<index_t>(set.coords[static_cast<std::size_t>(d)].size()), set.count());
    for (const float c : set.coords[static_cast<std::size_t>(d)]) {
      ASSERT_GE(c, 0.0f);
      ASSERT_LT(c, 64.0f);
    }
  }
}

TEST_P(TrajectorySweep, DeterministicForSameSeed) {
  const auto [type, dim] = GetParam();
  TrajectoryParams p;
  p.n = 16;
  p.k = 8;
  p.s = 20;
  p.seed = 42;
  const auto a = make_trajectory(type, dim, p);
  const auto b = make_trajectory(type, dim, p);
  for (int d = 0; d < dim; ++d) {
    for (index_t i = 0; i < a.count(); ++i) {
      ASSERT_EQ(a.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)],
                b.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Types, TrajectorySweep,
    ::testing::Combine(::testing::Values(TrajectoryType::kRadial, TrajectoryType::kRandom,
                                         TrajectoryType::kSpiral),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(trajectory_name(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Radial, SpokesAreCollinearThroughCenter) {
  TrajectoryParams p;
  p.n = 32;
  p.k = 16;
  p.s = 10;
  const auto set = make_trajectory(TrajectoryType::kRadial, 2, p);
  const double c = 32.0;  // M/2
  for (index_t s = 0; s < p.s; ++s) {
    // All samples of a spoke must be collinear with the center.
    const index_t base = s * p.k;
    const double x0 = set.coords[0][static_cast<std::size_t>(base)] - c;
    const double y0 = set.coords[1][static_cast<std::size_t>(base)] - c;
    for (index_t i = 1; i < p.k; ++i) {
      const double x = set.coords[0][static_cast<std::size_t>(base + i)] - c;
      const double y = set.coords[1][static_cast<std::size_t>(base + i)] - c;
      ASSERT_NEAR(x0 * y - y0 * x, 0.0, 1e-3) << "spoke " << s << " sample " << i;
    }
  }
}

TEST(Radial, DenseAtCenterSparseAtEdges) {
  TrajectoryParams p;
  p.n = 64;
  p.k = 64;
  p.s = 200;
  const auto set = make_trajectory(TrajectoryType::kRadial, 2, p);
  const double c = 64.0;
  index_t inner = 0, outer = 0;
  for (index_t i = 0; i < set.count(); ++i) {
    const double dx = set.coords[0][static_cast<std::size_t>(i)] - c;
    const double dy = set.coords[1][static_cast<std::size_t>(i)] - c;
    const double r = std::sqrt(dx * dx + dy * dy);
    if (r < 16.0) ++inner;
    if (r >= 48.0) ++outer;
  }
  // Equal-radius annuli: radial sampling density ~1/r, so the inner quarter
  // of the radius holds as many samples as any other quarter but in a much
  // smaller area. Inner disc count must far exceed the outer ring count
  // scaled by area.
  EXPECT_GT(inner, outer / 4);
  EXPECT_GT(inner, set.count() / 8);
}

TEST(Radial3d, DirectionsCoverTheSphere) {
  TrajectoryParams p;
  p.n = 32;
  p.k = 8;
  p.s = 100;
  const auto set = make_trajectory(TrajectoryType::kRadial, 3, p);
  // Octant coverage: directions live on the upper hemisphere and the signed
  // radius supplies the antipodal half, so the two endpoints of the spokes
  // together must reach every octant.
  bool octant[8] = {};
  const double c = 32.0;
  for (index_t s = 0; s < p.s; ++s) {
    for (const index_t i : {s * p.k, s * p.k + p.k - 1}) {  // both spoke ends
      const int ox = set.coords[0][static_cast<std::size_t>(i)] > c;
      const int oy = set.coords[1][static_cast<std::size_t>(i)] > c;
      const int oz = set.coords[2][static_cast<std::size_t>(i)] > c;
      octant[ox * 4 + oy * 2 + oz] = true;
    }
  }
  int covered = 0;
  for (const bool o : octant) covered += o;
  EXPECT_EQ(covered, 8);
}

TEST(Random, GaussianConcentration) {
  TrajectoryParams p;
  p.n = 64;
  p.k = 64;
  p.s = 100;
  p.seed = 5;
  const auto set = make_trajectory(TrajectoryType::kRandom, 3, p);
  const double c = 64.0;
  double mean = 0.0, var = 0.0;
  for (const float x : set.coords[0]) mean += x;
  mean /= static_cast<double>(set.count());
  for (const float x : set.coords[0]) var += (x - mean) * (x - mean);
  var /= static_cast<double>(set.count());
  EXPECT_NEAR(mean, c, 1.0);
  // σ = M/6 ≈ 21.3 → variance ≈ 455 (slightly reduced by truncation).
  EXPECT_NEAR(std::sqrt(var), 128.0 / 6.0, 2.0);
}

TEST(Random, DifferentSeedsProduceDifferentSets) {
  TrajectoryParams p;
  p.n = 16;
  p.k = 8;
  p.s = 10;
  p.seed = 1;
  const auto a = make_trajectory(TrajectoryType::kRandom, 2, p);
  p.seed = 2;
  const auto b = make_trajectory(TrajectoryType::kRandom, 2, p);
  int same = 0;
  for (index_t i = 0; i < a.count(); ++i) same += a.coords[0][static_cast<std::size_t>(i)] == b.coords[0][static_cast<std::size_t>(i)];
  EXPECT_LT(same, 5);
}

TEST(Spiral, PlanesAreUniformInZ) {
  TrajectoryParams p;
  p.n = 16;
  p.k = 32;
  p.s = 64;
  const auto set = make_trajectory(TrajectoryType::kSpiral, 3, p);
  // z takes exactly `planes` distinct values, evenly spaced.
  std::vector<float> zs(set.coords[2].begin(), set.coords[2].end());
  std::sort(zs.begin(), zs.end());
  zs.erase(std::unique(zs.begin(), zs.end()), zs.end());
  ASSERT_EQ(static_cast<index_t>(zs.size()), p.n);
  for (std::size_t i = 1; i < zs.size(); ++i) {
    ASSERT_NEAR(zs[i] - zs[i - 1], 32.0 / 16.0, 1e-3);
  }
}

TEST(Spiral, RadiusGrowsMonotonicallyAlongArm) {
  TrajectoryParams p;
  p.n = 32;
  p.k = 64;
  p.s = 8;
  const auto set = make_trajectory(TrajectoryType::kSpiral, 2, p);
  const double c = 32.0;
  double prev = -1.0;
  for (index_t i = 0; i < set.count(); ++i) {
    const double dx = set.coords[0][static_cast<std::size_t>(i)] - c;
    const double dy = set.coords[1][static_cast<std::size_t>(i)] - c;
    const double r = std::sqrt(dx * dx + dy * dy);
    ASSERT_GE(r, prev - 1e-3);
    prev = r;
  }
}

TEST(Presets, TableOneRowsMatchPaper) {
  const auto& rows = table1();
  ASSERT_EQ(rows.size(), 5u);
  // K·S = N³·SR for every row (paper §II-C relationship).
  for (const auto& row : rows) {
    const double total = static_cast<double>(row.k) * static_cast<double>(row.s);
    const double expect = std::pow(static_cast<double>(row.n), 3) * row.sr;
    EXPECT_NEAR(total / expect, 1.0, 1e-9) << "row " << row.id;
  }
  EXPECT_EQ(rows[1].n, 256);
  EXPECT_EQ(rows[1].s, 24576);
  EXPECT_EQ(rows[4].n, 320);
}

TEST(Presets, ScaledRowPreservesSamplingRate) {
  for (const auto& row : table1()) {
    const auto s = scaled(row, 4);
    const double total = static_cast<double>(s.k) * static_cast<double>(s.s);
    const double expect = std::pow(static_cast<double>(s.n), 3) * row.sr;
    EXPECT_NEAR(total / expect, 1.0, 0.05) << "row " << row.id;
    EXPECT_EQ(s.n, row.n / 4);
  }
}

TEST(Presets, ShrinkOneIsIdentity) {
  const auto row = default_row();
  const auto s = scaled(row, 1);
  EXPECT_EQ(s.n, row.n);
  EXPECT_EQ(s.k, row.k);
  EXPECT_EQ(s.s, row.s);
}

TEST(Trajectory, RejectsBadParameters) {
  TrajectoryParams p;
  p.n = 1;  // too small
  p.k = 4;
  p.s = 4;
  EXPECT_THROW(make_trajectory(TrajectoryType::kRadial, 2, p), Error);
  p.n = 16;
  EXPECT_THROW(make_trajectory(TrajectoryType::kRadial, 4, p), Error);
}

TEST(Trajectory, NamesAreStable) {
  EXPECT_STREQ(trajectory_name(TrajectoryType::kRadial), "radial");
  EXPECT_STREQ(trajectory_name(TrajectoryType::kRandom), "random");
  EXPECT_STREQ(trajectory_name(TrajectoryType::kSpiral), "spiral");
}

SampleSet hash_fixture() {
  TrajectoryParams p;
  p.n = 16;
  p.k = 32;
  p.s = 8;
  return make_trajectory(TrajectoryType::kRadial, 3, p);
}

// --- validate_samples -------------------------------------------------------

ErrorCode validation_code(const SampleSet& set) {
  try {
    validate_samples(set);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "validation unexpectedly passed";
  return ErrorCode::kInternal;
}

TEST(ValidateSamples, AcceptsEveryGeneratedTrajectory) {
  TrajectoryParams p;
  p.n = 16;
  p.k = 8;
  p.s = 10;
  for (const auto type :
       {TrajectoryType::kRadial, TrajectoryType::kRandom, TrajectoryType::kSpiral}) {
    for (int dim = 1; dim <= 3; ++dim) {
      EXPECT_NO_THROW(validate_samples(make_trajectory(type, dim, p)))
          << trajectory_name(type) << " dim " << dim;
    }
  }
}

TEST(ValidateSamples, RejectsNonFiniteCoordinates) {
  const SampleSet good = hash_fixture();
  for (const float w : {std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity()}) {
    SampleSet bad = good;
    bad.coords[2][5] = w;
    EXPECT_EQ(validation_code(bad), ErrorCode::kInvalidInput) << "value " << w;
  }
}

TEST(ValidateSamples, RejectsOutOfRangeCoordinates) {
  const SampleSet good = hash_fixture();
  SampleSet below = good;
  below.coords[0][0] = -0.001f;
  EXPECT_EQ(validation_code(below), ErrorCode::kInvalidInput);
  SampleSet at_m = good;
  at_m.coords[1][0] = static_cast<float>(good.m);  // half-open: M itself is out
  EXPECT_EQ(validation_code(at_m), ErrorCode::kInvalidInput);
}

TEST(ValidateSamples, AcceptsBoundaryCoordinates) {
  SampleSet set = hash_fixture();
  set.coords[0][0] = 0.0f;
  set.coords[1][0] = std::nextafter(static_cast<float>(set.m), 0.0f);
  EXPECT_NO_THROW(validate_samples(set));
}

TEST(ValidateSamples, AcceptsEmptySet) {
  // Zero samples is valid input: it plans and transforms as the empty
  // operator (core/nufft tests cover the end-to-end behaviour).
  SampleSet empty;
  empty.dim = 2;
  empty.m = 32;
  EXPECT_NO_THROW(validate_samples(empty));
}

TEST(ValidateSamples, RejectsMalformedSets) {
  SampleSet negative;
  negative.dim = 2;
  negative.m = 32;
  negative.k = -1;
  negative.s = 3;
  EXPECT_EQ(validation_code(negative), ErrorCode::kInvalidInput);

  SampleSet short_dim = hash_fixture();
  short_dim.coords[1].pop_back();
  EXPECT_EQ(validation_code(short_dim), ErrorCode::kInvalidInput);

  SampleSet bad_dim = hash_fixture();
  bad_dim.dim = 4;
  EXPECT_EQ(validation_code(bad_dim), ErrorCode::kInvalidInput);

  SampleSet no_grid = hash_fixture();
  no_grid.m = 0;
  EXPECT_EQ(validation_code(no_grid), ErrorCode::kInvalidInput);
}

TEST(ContentHash, EqualSetsHashEqual) {
  const SampleSet a = hash_fixture();
  const SampleSet b = hash_fixture();
  EXPECT_EQ(content_hash(a), content_hash(b));
}

TEST(ContentHash, SensitiveToReordering) {
  // Swapping two coordinates preserves the multiset of samples but changes
  // the preprocessing (bin assignment order), so the hash must change.
  const SampleSet a = hash_fixture();
  SampleSet b = hash_fixture();
  std::swap(b.coords[0][0], b.coords[0][1]);
  EXPECT_NE(content_hash(a), content_hash(b));
}

TEST(ContentHash, SensitiveToTruncation) {
  // Length framing: dropping the trailing sample of one dimension must not
  // collide with the full set even though every remaining byte matches.
  const SampleSet a = hash_fixture();
  SampleSet b = hash_fixture();
  b.coords[2].pop_back();
  EXPECT_NE(content_hash(a), content_hash(b));
}

TEST(ContentHash, SensitiveToValueGeometryAndType) {
  const SampleSet a = hash_fixture();

  SampleSet b = hash_fixture();
  b.coords[1][5] = std::nextafter(b.coords[1][5], 1e9f);
  EXPECT_NE(content_hash(a), content_hash(b));

  SampleSet c = hash_fixture();
  c.m += 1;
  EXPECT_NE(content_hash(a), content_hash(c));

  SampleSet d = hash_fixture();
  d.type = TrajectoryType::kSpiral;
  EXPECT_NE(content_hash(a), content_hash(d));
}

}  // namespace
}  // namespace nufft::datasets
