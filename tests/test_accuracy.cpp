// Tolerance-contract harness (`ctest -L accuracy`).
//
// The differential check behind core/tolerance.cpp's calibration table: for
// every (dimension, direction, requested tolerance, kernel family) cell, a
// plan built with PlanConfig::tolerance set must achieve a relative L2 error
// against the exact double-precision NUDFT at or below the request. The
// sweep is also the calibration instrument — run with
//
//   NUFFT_ACCURACY_CALIBRATE=1 ./nufft_accuracy_tests
//
// to print the achieved error for every cell (worst case over directions) in
// a form suitable for updating the table and EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/nudft.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "core/grid.hpp"
#include "core/nufft.hpp"
#include "core/tolerance.hpp"
#include "datasets/trajectory.hpp"
#include "kernels/kernel.hpp"
#include "parallel/thread_pool.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;
using kernels::KernelType;

bool calibrate_mode() {
  const char* env = std::getenv("NUFFT_ACCURACY_CALIBRATE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

struct Achieved {
  double forward = 0.0;
  double adjoint = 0.0;
  double worst() const { return std::max(forward, adjoint); }
};

/// Build a tolerance-driven plan and measure both directions against the
/// exact NUDFT oracle.
Achieved measure(int dim, double tolerance, KernelType family, std::uint64_t seed) {
  // NUDFT cost is O(N^d · K); sizes keep the oracle tractable while leaving
  // enough samples for the L2 norm to be a meaningful average.
  const index_t n = dim == 3 ? 12 : (dim == 2 ? 24 : 96);
  const index_t count = dim == 3 ? 600 : (dim == 2 ? 500 : 300);
  const GridDesc g = make_grid(dim, n, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, dim, n, count, seed);

  PlanConfig cfg;
  cfg.kernel = family;
  cfg.tolerance = tolerance;
  cfg.threads = 1;
  Nufft plan(g, set, cfg);

  const cvecf img_in = testing::random_image(g.image_elems(), seed ^ 0xBF58476D1CE4E5B9ull);
  const cvecf raw_in = testing::random_raw(set.count(), seed ^ 0x94D049BB133111EBull);

  ThreadPool pool(1);
  std::vector<cdouble> fwd_ref(static_cast<std::size_t>(set.count()));
  std::vector<cdouble> adj_ref(static_cast<std::size_t>(g.image_elems()));
  baselines::nudft_forward(g, set, img_in.data(), fwd_ref.data(), pool);
  baselines::nudft_adjoint(g, set, raw_in.data(), adj_ref.data(), pool);

  cvecf fwd_got(static_cast<std::size_t>(set.count()));
  plan.forward(img_in.data(), fwd_got.data());
  cvecf adj_got(static_cast<std::size_t>(g.image_elems()));
  plan.adjoint(raw_in.data(), adj_got.data());

  Achieved a;
  a.forward = testing::rel_err(fwd_got.data(), fwd_ref.data(), set.count());
  a.adjoint = testing::rel_err(adj_got.data(), adj_ref.data(), g.image_elems());
  return a;
}

constexpr double kTolerances[] = {1e-2, 1e-3, 1e-4, 1e-5, 1e-6};

class ToleranceContract
    : public ::testing::TestWithParam<std::tuple<int, double, KernelType>> {};

TEST_P(ToleranceContract, AchievedErrorAtOrBelowRequest) {
  const auto [dim, tolerance, family] = GetParam();
  const Achieved a = measure(dim, tolerance, family, 7u * static_cast<std::uint64_t>(dim));
  EXPECT_LE(a.forward, tolerance) << "forward, dim=" << dim;
  EXPECT_LE(a.adjoint, tolerance) << "adjoint, dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ToleranceContract,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::ValuesIn(kTolerances),
                       ::testing::Values(KernelType::kKaiserBessel, KernelType::kEs)),
    [](const auto& info) {
      // std::get, not structured bindings: commas inside [] are unprotected
      // in macro arguments.
      const int dim = std::get<0>(info.param);
      const double tol = std::get<1>(info.param);
      const KernelType family = std::get<2>(info.param);
      return std::to_string(dim) + "d_tol1em" +
             std::to_string(static_cast<int>(std::lround(-std::log10(tol)))) +
             (family == KernelType::kEs ? "_es" : "_kb");
    });

TEST(ToleranceContract, EsWidthNoWiderThanKaiserBessel) {
  // The headline of the ES calibration: every tolerance is met at a kernel
  // width no larger than the Kaiser-Bessel row's — so the cheaper kernel is
  // never the wider one.
  for (const double tol : kTolerances) {
    const auto kb = resolve_tolerance(tol, KernelType::kKaiserBessel);
    const auto es = resolve_tolerance(tol, KernelType::kEs);
    EXPECT_LE(es.kernel_radius, kb.kernel_radius) << "tol=" << tol;
  }
}

TEST(ToleranceContract, CalibrationSweep) {
  // Non-assertive instrument: prints the achieved-vs-requested table the
  // calibration rows in core/tolerance.cpp (and EXPERIMENTS.md) come from.
  // Skipped unless NUFFT_ACCURACY_CALIBRATE is set, since the full sweep
  // repeats every cell with a second seed.
  if (!calibrate_mode()) {
    GTEST_SKIP() << "set NUFFT_ACCURACY_CALIBRATE=1 to run the calibration sweep";
  }
  std::printf("# family  tol       W    achieved(worst over dims/directions)\n");
  for (const KernelType family : {KernelType::kKaiserBessel, KernelType::kEs}) {
    for (const double tol : kTolerances) {
      double worst = 0.0;
      for (int dim = 1; dim <= 3; ++dim) {
        for (std::uint64_t seed : {11u, 12u}) {
          worst = std::max(worst, measure(dim, tol, family, seed).worst());
        }
      }
      const auto row = resolve_tolerance(tol, family);
      std::printf("%s  %8.0e  W=%.1f  %.3e\n",
                  family == KernelType::kEs ? "es" : "kb", tol, row.kernel_radius, worst);
    }
  }
}

TEST(ToleranceAlpha, RejectionNamesRequestedAndCalibratedAlpha) {
  // The α-rejection must tell the caller BOTH numbers they need to act on:
  // the α their grid actually has and the calibrated minimum. A message
  // naming only one of them sends the user back to the source to find the
  // other.
  PlanConfig cfg;
  cfg.tolerance = 1e-3;
  try {
    apply_tolerance(cfg, 1.5);
    FAIL() << "apply_tolerance accepted alpha below the calibrated minimum";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnachievableAccuracy);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("alpha >= 2"), std::string::npos)
        << "message must name the calibrated minimum: " << msg;
    EXPECT_NE(msg.find("alpha = 1.5"), std::string::npos)
        << "message must name the requested alpha: " << msg;
  }
}

}  // namespace
}  // namespace nufft
