// Parallel-preprocessing suite (`ctest -L preproc`).
//
// The pipeline's determinism contract (core/preprocess.hpp): every field of
// `Preprocessed` depends only on (grid, samples, cfg) — never on the width
// of the pool that executed it or on its scheduling. These tests pin that
// contract across pool widths and repeated runs, and cover the
// derived-width reorder-key packing on grids wide enough to alias the old
// fixed 10-bit fields. The binary is its own ctest label so the sanitizer
// configs (tools/run_fuzz_sanitized.sh) race-check the parallel scatter and
// radix sort under TSan/ASan.
#include <gtest/gtest.h>

#include <cstdint>

#include <string>
#include <vector>

#include "core/preprocess.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;

PlanConfig plan_config() {
  PlanConfig cfg;
  cfg.threads = 8;  // fixed: cfg parameterizes the plan, the pool only runs it
  cfg.kernel_radius = 2.0;
  return cfg;
}

// Field-by-field bit equality of two preprocessing results.
void expect_identical(const Preprocessed& a, const Preprocessed& b) {
  ASSERT_EQ(a.layout.dim, b.layout.dim);
  for (int d = 0; d < a.layout.dim; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    EXPECT_EQ(a.layout.num_parts[sd], b.layout.num_parts[sd]);
    ASSERT_EQ(a.layout.bounds[sd], b.layout.bounds[sd]);
  }
  ASSERT_EQ(a.orig_index, b.orig_index);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t k = 0; k < a.tasks.size(); ++k) {
    EXPECT_EQ(a.tasks[k].begin, b.tasks[k].begin);
    EXPECT_EQ(a.tasks[k].end, b.tasks[k].end);
    EXPECT_EQ(a.tasks[k].box_lo, b.tasks[k].box_lo);
    EXPECT_EQ(a.tasks[k].box_hi, b.tasks[k].box_hi);
  }
  ASSERT_EQ(a.weights, b.weights);
  ASSERT_EQ(a.privatized, b.privatized);
  EXPECT_EQ(a.privatization_threshold, b.privatization_threshold);
  for (int d = 0; d < a.layout.dim; ++d) {
    const auto& ca = a.coords[static_cast<std::size_t>(d)];
    const auto& cb = b.coords[static_cast<std::size_t>(d)];
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i], cb[i]) << "coords differ at dim " << d << " index " << i;
    }
  }
}

TEST(PreprocParallel, BitIdenticalAcrossPoolWidths) {
  const GridDesc g = make_grid(3, 16, 2.0);
  // Radial data clusters at the center, so tasks are heavily skewed — the
  // adversarial case for the chunked counting sort and largest-first radix.
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 3, 16, 20000);
  const PlanConfig cfg = plan_config();
  ThreadPool serial(1);
  const auto reference = preprocess(g, set, cfg, serial);
  EXPECT_EQ(reference.stats.threads_used, 1);
  for (const int width : {2, 8}) {
    ThreadPool pool(width);
    const auto pp = preprocess(g, set, cfg, pool);
    EXPECT_EQ(pp.stats.threads_used, width);
    expect_identical(reference, pp);
  }
}

TEST(PreprocParallel, BitIdenticalAcrossPoolWidthsNoReorder) {
  // With reorder off the bin order itself is the output — the parallel
  // scatter must reproduce the serial stable counting sort exactly.
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 12000);
  PlanConfig cfg = plan_config();
  cfg.reorder = false;
  ThreadPool serial(1);
  const auto reference = preprocess(g, set, cfg, serial);
  for (const int width : {2, 8}) {
    ThreadPool pool(width);
    expect_identical(reference, preprocess(g, set, cfg, pool));
  }
}

TEST(PreprocParallel, RepeatedRunsIdentical) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kSpiral, 2, 32, 10000);
  const PlanConfig cfg = plan_config();
  ThreadPool pool(8);
  const auto first = preprocess(g, set, cfg, pool);
  for (int rep = 0; rep < 3; ++rep) {
    expect_identical(first, preprocess(g, set, cfg, pool));
  }
}

TEST(PreprocParallel, LegacyOverloadMatchesExplicitPool) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 5000);
  const PlanConfig cfg = plan_config();
  ThreadPool pool(cfg.threads);
  expect_identical(preprocess(g, set, cfg), preprocess(g, set, cfg, pool));
}

TEST(PreprocParallel, NestedPreprocessDegradesToSerial) {
  // A plan built from inside another pool's job (e.g. a registry build on an
  // engine worker) must still complete, on the caller alone.
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 4000);
  const PlanConfig cfg = plan_config();
  ThreadPool pool(4);
  const auto reference = preprocess(g, set, cfg, pool);
  pool.run_on_all([&](int tid) {
    if (tid == 0) expect_identical(reference, preprocess(g, set, cfg, pool));
  });
}

TEST(PreprocParallel, StageStatsArePopulated) {
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 3, 16, 8000);
  ThreadPool pool(4);
  const auto pp = preprocess(g, set, plan_config(), pool);
  EXPECT_GT(pp.stats.total_s, 0.0);
  EXPECT_GE(pp.stats.gather_s, 0.0);
  EXPECT_EQ(pp.stats.threads_used, 4);
  const double stage_sum = pp.stats.partition_s + pp.stats.bin_s + pp.stats.reorder_s +
                           pp.stats.gather_s + pp.stats.graph_s;
  EXPECT_LE(stage_sum, pp.stats.total_s + 1e-6);
}

TEST(PreprocParallel, EmitsStageSpansAndTotalHistogram) {
  obs::set_trace_enabled(true);
  obs::set_metrics_enabled(true);
  obs::reset_spans();
  obs::MetricsRegistry::instance().reset();
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 4000);
  ThreadPool pool(2);
  preprocess(g, set, plan_config(), pool);
  const auto spans = obs::drain_spans();
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(false);
  for (const char* name : {"prep.partition", "prep.bin", "prep.reorder", "prep.gather"}) {
    bool found = false;
    for (const auto& s : spans) {
      if (std::string(s.name) == name && std::string(s.cat) == "prep") found = true;
    }
    EXPECT_TRUE(found) << "missing span " << name;
  }
  EXPECT_GE(obs::MetricsRegistry::instance().histogram("prep_total_ns").count(), 1u);
}

// Regression for the reorder-key packing: the old fixed 10-bit fields alias
// tile coordinates once a dimension has more than 1024 tiles (m/tile > 1023),
// silently destroying reorder locality on wide grids. Field widths are now
// derived from the grid extent and tile edge.
TEST(PreprocParallel, WideGridTileOrderNoAliasing) {
  // 2-D m = 16384, tile 8 → 2048 tiles per dimension: the y tile coordinate
  // needs 11 bits and would bleed into the x field under 10-bit packing.
  const GridDesc g = make_grid(2, 8192, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 8192, 6000);
  PlanConfig cfg = plan_config();
  cfg.threads = 2;
  cfg.reorder_tile = 8;
  ThreadPool pool(2);
  const auto pp = preprocess(g, set, cfg, pool);
  for (const auto& task : pp.tasks) {
    std::uint64_t prev = 0;
    for (index_t i = task.begin; i < task.end; ++i) {
      const auto cx = static_cast<std::uint64_t>(pp.coords[0][static_cast<std::size_t>(i)]);
      const auto cy = static_cast<std::uint64_t>(pp.coords[1][static_cast<std::size_t>(i)]);
      // Tile-scan position, packed wide enough that nothing can alias.
      const std::uint64_t key =
          (((cx / 8) * 2048 + (cy / 8)) * 8 + (cx % 8)) * 8 + (cy % 8);
      ASSERT_GE(key, prev) << "tile-scan order violated inside a task";
      prev = key;
    }
  }
}

TEST(PreprocParallel, WideTileCellOrderNoAliasing) {
  // 1-D with a tile wider than 1024 cells: the cell-within-tile field
  // overflows 10 bits; with derived widths the within-task order is simply
  // the integer cell coordinate, non-decreasing.
  const GridDesc g = make_grid(1, 8192, 2.0);  // m = 16384
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 1, 8192, 4000);
  PlanConfig cfg = plan_config();
  cfg.threads = 2;
  cfg.reorder_tile = 2048;
  ThreadPool pool(2);
  const auto pp = preprocess(g, set, cfg, pool);
  for (const auto& task : pp.tasks) {
    index_t prev = 0;
    for (index_t i = task.begin; i < task.end; ++i) {
      const auto cell = static_cast<index_t>(pp.coords[0][static_cast<std::size_t>(i)]);
      ASSERT_GE(cell, prev) << "cell order violated inside a task";
      prev = cell;
    }
  }
}

}  // namespace
}  // namespace nufft
