// End-to-end NUFFT operator tests: accuracy against the exact NUDFT,
// adjointness, determinism across thread counts and scheduling modes,
// component entry points, and configuration ablations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "baselines/nudft.hpp"
#include "common/error.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;

// Accuracy sweep: every (dim, trajectory, W, threads, simd) combination must
// approximate the exact transform to a W-dependent tolerance.
class NufftAccuracy
    : public ::testing::TestWithParam<std::tuple<int, TrajectoryType, double, int, bool>> {};

double tolerance_for(double W) {
  // Wider kernels are more accurate; these bounds are loose enough to be
  // robust yet catch any systematic defect (wrong scaling, shift, wrap).
  if (W <= 2.0) return 5e-3;
  if (W <= 4.0) return 5e-5;
  return 5e-6;
}

TEST_P(NufftAccuracy, ForwardMatchesNudft) {
  const auto [dim, type, W, threads, simd] = GetParam();
  const index_t N = dim == 3 ? 12 : (dim == 2 ? 20 : 48);
  const GridDesc g = make_grid(dim, N, 2.0);
  const auto set = testing::small_trajectory(type, dim, N, dim == 1 ? 100 : 400);

  PlanConfig cfg;
  cfg.threads = threads;
  cfg.kernel_radius = W;
  cfg.use_simd = simd;
  Nufft plan(g, set, cfg);

  const cvecf img = testing::random_image(g.image_elems(), 17);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(img.data(), raw.data());

  ThreadPool pool(1);
  std::vector<cdouble> ref(static_cast<std::size_t>(set.count()));
  baselines::nudft_forward(g, set, img.data(), ref.data(), pool);

  EXPECT_LT(testing::rel_err(raw.data(), ref.data(), set.count()), tolerance_for(W));
}

TEST_P(NufftAccuracy, AdjointMatchesNudft) {
  const auto [dim, type, W, threads, simd] = GetParam();
  const index_t N = dim == 3 ? 10 : (dim == 2 ? 16 : 48);
  const GridDesc g = make_grid(dim, N, 2.0);
  const auto set = testing::small_trajectory(type, dim, N, dim == 1 ? 80 : 300);

  PlanConfig cfg;
  cfg.threads = threads;
  cfg.kernel_radius = W;
  cfg.use_simd = simd;
  Nufft plan(g, set, cfg);

  const cvecf raw = testing::random_raw(set.count(), 23);
  cvecf img(static_cast<std::size_t>(g.image_elems()));
  plan.adjoint(raw.data(), img.data());

  ThreadPool pool(1);
  std::vector<cdouble> ref(static_cast<std::size_t>(g.image_elems()));
  baselines::nudft_adjoint(g, set, raw.data(), ref.data(), pool);

  EXPECT_LT(testing::rel_err(img.data(), ref.data(), g.image_elems()), tolerance_for(W));
}

std::string accuracy_name(
    const ::testing::TestParamInfo<std::tuple<int, TrajectoryType, double, int, bool>>& info) {
  return "d" + std::to_string(std::get<0>(info.param)) + "_" +
         datasets::trajectory_name(std::get<1>(info.param)) + "_W" +
         std::to_string(static_cast<int>(std::get<2>(info.param))) + "_t" +
         std::to_string(std::get<3>(info.param)) +
         (std::get<4>(info.param) ? "_simd" : "_scalar");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NufftAccuracy,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(TrajectoryType::kRadial, TrajectoryType::kRandom,
                                         TrajectoryType::kSpiral),
                       ::testing::Values(2.0, 4.0), ::testing::Values(1, 4),
                       ::testing::Values(true, false)),
    accuracy_name);

// Adjointness: ⟨A x, y⟩ = ⟨x, Aᴴ y⟩ to single-precision rounding.
class NufftAdjointness : public ::testing::TestWithParam<std::tuple<int, TrajectoryType>> {};

TEST_P(NufftAdjointness, DotTestPasses) {
  const auto [dim, type] = GetParam();
  const index_t N = dim == 3 ? 12 : 24;
  const GridDesc g = make_grid(dim, N, 2.0);
  const auto set = testing::small_trajectory(type, dim, N, 500);

  PlanConfig cfg;
  cfg.threads = 3;
  Nufft plan(g, set, cfg);

  const cvecf x = testing::random_image(g.image_elems(), 5);
  const cvecf y = testing::random_raw(set.count(), 6);
  cvecf ax(static_cast<std::size_t>(set.count()));
  cvecf aty(static_cast<std::size_t>(g.image_elems()));
  plan.forward(x.data(), ax.data());
  plan.adjoint(y.data(), aty.data());

  cdouble lhs(0, 0), rhs(0, 0);
  for (index_t i = 0; i < set.count(); ++i) {
    lhs += cdouble(ax[static_cast<std::size_t>(i)].real(), ax[static_cast<std::size_t>(i)].imag()) *
           std::conj(cdouble(y[static_cast<std::size_t>(i)].real(), y[static_cast<std::size_t>(i)].imag()));
  }
  for (index_t i = 0; i < g.image_elems(); ++i) {
    rhs += cdouble(x[static_cast<std::size_t>(i)].real(), x[static_cast<std::size_t>(i)].imag()) *
           std::conj(cdouble(aty[static_cast<std::size_t>(i)].real(), aty[static_cast<std::size_t>(i)].imag()));
  }
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NufftAdjointness,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(TrajectoryType::kRadial,
                                                              TrajectoryType::kRandom,
                                                              TrajectoryType::kSpiral)),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) + "_" +
                                  datasets::trajectory_name(std::get<1>(info.param));
                         });

// Determinism and configuration equivalence.

TEST(NufftDeterminism, AdjointIdenticalAcrossThreadCounts) {
  // With a fixed partition layout and privatization off, the TDG imposes a
  // total order (by Gray rank) on every pair of tasks that share grid
  // cells, and each task processes its samples sequentially — so the
  // adjoint grid is bitwise reproducible for ANY thread count. (The default
  // config derives the partition count and privatization marks from the
  // thread count, which legitimately changes summation order; pin both.)
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 3000);
  const cvecf raw = testing::random_raw(set.count(), 9);

  cvecf reference;
  for (int threads : {1, 2, 5, 8}) {
    PlanConfig cfg;
    cfg.threads = threads;
    cfg.partitions_per_dim = 4;
    cfg.selective_privatization = false;
    Nufft plan(g, set, cfg);
    plan.spread(raw.data());
    cvecf grid(plan.grid_data(), plan.grid_data() + g.grid_elems());
    if (reference.empty()) {
      reference = grid;
    } else {
      for (index_t i = 0; i < g.grid_elems(); ++i) {
        ASSERT_EQ(grid[static_cast<std::size_t>(i)], reference[static_cast<std::size_t>(i)])
            << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(NufftDeterminism, PriorityAndFifoQueuesGiveSameGrid) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 2000);
  const cvecf raw = testing::random_raw(set.count(), 10);

  cvecf grids[2];
  for (int mode = 0; mode < 2; ++mode) {
    PlanConfig cfg;
    cfg.threads = 4;
    cfg.priority_queue = mode == 0;
    Nufft plan(g, set, cfg);
    plan.spread(raw.data());
    grids[mode].assign(plan.grid_data(), plan.grid_data() + g.grid_elems());
  }
  for (index_t i = 0; i < g.grid_elems(); ++i) {
    ASSERT_EQ(grids[0][static_cast<std::size_t>(i)], grids[1][static_cast<std::size_t>(i)]);
  }
}

TEST(NufftDeterminism, ColorBarrierScheduleMatchesTdg) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 2500);
  const cvecf raw = testing::random_raw(set.count(), 11);

  cvecf grids[2];
  for (int mode = 0; mode < 2; ++mode) {
    PlanConfig cfg;
    cfg.threads = 4;
    cfg.color_barrier_schedule = mode == 1;
    cfg.selective_privatization = false;  // colored mode has no privatization
    Nufft plan(g, set, cfg);
    plan.spread(raw.data());
    grids[mode].assign(plan.grid_data(), plan.grid_data() + g.grid_elems());
  }
  for (index_t i = 0; i < g.grid_elems(); ++i) {
    ASSERT_EQ(grids[0][static_cast<std::size_t>(i)], grids[1][static_cast<std::size_t>(i)]);
  }
}

TEST(NufftDeterminism, PrivatizationDoesNotChangeResultBeyondRounding) {
  const GridDesc g = make_grid(2, 48, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 48, 8000);
  const cvecf raw = testing::random_raw(set.count(), 12);

  cvecf grids[2];
  double gnorm = 0.0;
  for (int mode = 0; mode < 2; ++mode) {
    PlanConfig cfg;
    cfg.threads = 8;
    cfg.selective_privatization = mode == 1;
    cfg.privatization_factor = 0.25;  // force several privatized tasks
    Nufft plan(g, set, cfg);
    if (mode == 1) {
      EXPECT_GT(plan.plan().stats.privatized_tasks, 0)
          << "test needs at least one privatized task to be meaningful";
    }
    plan.spread(raw.data());
    grids[mode].assign(plan.grid_data(), plan.grid_data() + g.grid_elems());
    for (const auto& v : grids[mode]) gnorm += std::norm(v);
  }
  // Privatized tasks accumulate in a private buffer first, so addition
  // order differs: require agreement to rounding, not bitwise.
  const double scale = std::sqrt(gnorm / static_cast<double>(g.grid_elems()));
  EXPECT_LT(testing::max_abs_diff(grids[0].data(), grids[1].data(), g.grid_elems()),
            1e-4 * (1.0 + scale));
}

TEST(NufftComponents, SpreadTotalMassMatchesSampleMass) {
  // Σ_grid spread(raw) = Σ_p raw[p]·(Σ kernel weights) — conservation of the
  // scattered mass (grid sum equals sample sum times the kernel's mass).
  const GridDesc g = make_grid(2, 24, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 24, 500);
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, set, cfg);
  const cvecf raw = testing::random_raw(set.count(), 13);
  plan.spread(raw.data());

  cdouble grid_sum(0, 0);
  for (index_t i = 0; i < g.grid_elems(); ++i) {
    grid_sum += cdouble(plan.grid_data()[i].real(), plan.grid_data()[i].imag());
  }
  // Kernel mass per sample varies only with the fractional offset; bound
  // the total against per-sample direct evaluation.
  const auto kernel = kernels::make_kernel(cfg.kernel, cfg.kernel_radius, g.alpha);
  cdouble expect(0, 0);
  for (index_t p = 0; p < set.count(); ++p) {
    double mass = 1.0;
    for (int d = 0; d < 2; ++d) {
      const double c = set.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
      double m1 = 0.0;
      for (index_t u = static_cast<index_t>(std::ceil(c - 4.0));
           u <= static_cast<index_t>(std::floor(c + 4.0)); ++u) {
        m1 += kernel->value(static_cast<double>(u) - c);
      }
      mass *= m1;
    }
    expect += cdouble(raw[static_cast<std::size_t>(p)].real(),
                      raw[static_cast<std::size_t>(p)].imag()) *
              mass;
  }
  EXPECT_LT(std::abs(grid_sum - expect) / std::abs(expect), 1e-4);
}

TEST(NufftComponents, InterpReadsGridWrittenExternally) {
  const GridDesc g = make_grid(1, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kSpiral, 1, 32, 64);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  // Constant grid → every interpolated sample equals the kernel mass at its
  // fractional offset.
  plan.clear_grid();
  for (index_t i = 0; i < g.grid_elems(); ++i) plan.grid_data()[i] = cfloat(1.0f, 0.0f);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.interp(raw.data());
  const auto kernel = kernels::make_kernel(cfg.kernel, cfg.kernel_radius, g.alpha);
  for (index_t p = 0; p < set.count(); ++p) {
    const double c = set.coords[0][static_cast<std::size_t>(p)];
    double mass = 0.0;
    for (index_t u = static_cast<index_t>(std::ceil(c - 4.0));
         u <= static_cast<index_t>(std::floor(c + 4.0)); ++u) {
      mass += kernel->value(static_cast<double>(u) - c);
    }
    ASSERT_NEAR(raw[static_cast<std::size_t>(p)].real(), mass, 1e-3);
    ASSERT_NEAR(raw[static_cast<std::size_t>(p)].imag(), 0.0, 1e-5);
  }
}

TEST(NufftConfig, GaussianKernelAlsoAccurate) {
  const GridDesc g = make_grid(2, 20, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 20, 300);
  PlanConfig cfg;
  cfg.kernel = kernels::KernelType::kGaussian;
  cfg.kernel_radius = 4.0;
  Nufft plan(g, set, cfg);
  const cvecf img = testing::random_image(g.image_elems(), 19);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(img.data(), raw.data());
  ThreadPool pool(1);
  std::vector<cdouble> ref(static_cast<std::size_t>(set.count()));
  baselines::nudft_forward(g, set, img.data(), ref.data(), pool);
  // Gaussian is less accurate than Kaiser-Bessel at equal W — that is the
  // point of the paper's kernel choice; assert a looser bound.
  EXPECT_LT(testing::rel_err(raw.data(), ref.data(), set.count()), 2e-3);
}

TEST(NufftConfig, SmallerOversamplingStillWorks) {
  const GridDesc g = make_grid(2, 32, 1.25);
  datasets::TrajectoryParams tp;
  tp.n = 32;
  tp.k = 16;
  tp.s = 25;
  tp.alpha = 1.25;
  const auto set = datasets::make_trajectory(TrajectoryType::kRandom, 2, tp);
  PlanConfig cfg;
  cfg.kernel_radius = 4.0;
  Nufft plan(g, set, cfg);
  const cvecf img = testing::random_image(g.image_elems(), 21);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(img.data(), raw.data());
  ThreadPool pool(1);
  std::vector<cdouble> ref(static_cast<std::size_t>(set.count()));
  baselines::nudft_forward(g, set, img.data(), ref.data(), pool);
  // α = 1.25 with the Beatty β still delivers usable accuracy (paper §II-B).
  EXPECT_LT(testing::rel_err(raw.data(), ref.data(), set.count()), 5e-3);
}

TEST(NufftConfig, StatsBreakdownSumsToTotal) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 1000);
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, set, cfg);
  const cvecf img = testing::random_image(g.image_elems(), 3);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(img.data(), raw.data());
  const auto& s = plan.last_forward_stats();
  EXPECT_GT(s.total_s, 0.0);
  EXPECT_LE(s.scale_s + s.fft_s + s.conv_s, s.total_s * 1.05 + 1e-3);

  cvecf img2(static_cast<std::size_t>(g.image_elems()));
  plan.adjoint(raw.data(), img2.data());
  const auto& a = plan.last_adjoint_stats();
  EXPECT_GT(a.total_s, 0.0);
  EXPECT_GT(a.tasks, 0);
}

TEST(NufftConfig, RejectsMismatchedSampleSet) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 100);  // M=32≠64
  PlanConfig cfg;
  EXPECT_THROW(Nufft(g, set, cfg), Error);
}

TEST(NufftConfig, RejectsDimensionMismatch) {
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 100);
  PlanConfig cfg;
  EXPECT_THROW(Nufft(g, set, cfg), Error);
}

// --- Input validation at plan construction ---------------------------------

ErrorCode plan_error_code(const GridDesc& g, const datasets::SampleSet& set) {
  PlanConfig cfg;
  try {
    Nufft plan(g, set, cfg);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "plan construction unexpectedly succeeded";
  return ErrorCode::kInternal;
}

TEST(NufftValidation, RejectsNonFiniteAndOutOfRangeCoordinates) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto good = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 100);
  // A NaN, an infinity, a negative coordinate, or one at exactly M would all
  // corrupt the preprocessing histogram; each must be rejected up front with
  // the caller-facing code.
  for (const float w : {std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity(), -0.5f,
                        static_cast<float>(good.m)}) {
    datasets::SampleSet bad = good;
    bad.coords[1][7] = w;
    EXPECT_EQ(plan_error_code(g, bad), ErrorCode::kInvalidInput) << "coordinate " << w;
  }
}

TEST(NufftValidation, EmptySampleSetIsTheEmptyOperator) {
  // Zero samples is valid input (a batch job may submit an empty
  // interleave): the plan builds, runs the full scheduler path over its
  // (sample-free) tasks, the forward writes nothing, and the adjoint
  // produces an exactly zero image.
  const GridDesc g = make_grid(2, 32, 2.0);
  datasets::SampleSet empty;
  empty.dim = 2;
  empty.m = 64;
  empty.k = 0;
  empty.s = 0;
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, empty, cfg);
  EXPECT_EQ(plan.sample_count(), 0);
  EXPECT_GT(plan.plan().stats.tasks, 0);

  const cvecf img = testing::random_image(g.image_elems(), 41);
  plan.forward(img.data(), nullptr);  // no samples: raw is never touched

  cvecf back(static_cast<std::size_t>(g.image_elems()), cfloat(1.0f, 1.0f));
  plan.adjoint(nullptr, back.data());
  for (const cfloat v : back) ASSERT_EQ(v, cfloat(0.0f, 0.0f));
  // The scheduler ran real (sample-free) tasks; the busy clock may or may
  // not resolve them, so any sentinel (0.0 unmeasurable, 1.0 trivially
  // balanced) or a genuine ratio ≥ 1 is acceptable — but never NaN.
  const double li = plan.last_adjoint_stats().load_imbalance();
  ASSERT_FALSE(std::isnan(li));
  EXPECT_TRUE(li == 0.0 || li >= 1.0);
}

TEST(NufftValidation, RejectsNegativeSampleCount) {
  const GridDesc g = make_grid(2, 32, 2.0);
  datasets::SampleSet bad;
  bad.dim = 2;
  bad.m = 64;
  bad.k = -4;
  bad.s = 1;
  EXPECT_EQ(plan_error_code(g, bad), ErrorCode::kInvalidInput);
}

TEST(NufftValidation, RejectsGridNarrowerThanKernelFootprint) {
  // 2⌈W⌉+1 > m: one sample's window would cover the grid more than once.
  // Plan construction must reject it — on the fresh path (via preprocess)
  // AND on the restored-plan path, which skips preprocess entirely.
  GridDesc g;
  g.dim = 1;
  g.n = {4, 0, 0};
  g.m = {7, 1, 1};  // footprint for W=4 is 9 > 7
  g.alpha = 7.0 / 4.0;
  datasets::SampleSet set;
  set.dim = 1;
  set.m = 7;
  set.k = 3;
  set.s = 1;
  set.coords[0] = {0.5f, 3.0f, 6.25f};
  EXPECT_EQ(plan_error_code(g, set), ErrorCode::kInvalidInput);

  // Restored path: hand the constructor a preprocessing result built on a
  // wide-enough grid, then shrink the grid — the footprint check must fire
  // before any convolution can run.
  GridDesc gbig = g;
  gbig.m = {9, 1, 1};
  datasets::SampleSet sbig = set;
  sbig.m = 9;
  PlanConfig cfg;
  Preprocessed pp = preprocess(gbig, sbig, cfg);
  try {
    Nufft plan(g, set, cfg, std::move(pp));
    ADD_FAILURE() << "restored-plan construction unexpectedly succeeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST(NufftValidation, RejectsMismatchedCoordinateArray) {
  const GridDesc g = make_grid(2, 32, 2.0);
  datasets::SampleSet bad = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 100);
  bad.coords[1].pop_back();
  EXPECT_EQ(plan_error_code(g, bad), ErrorCode::kInvalidInput);
}

TEST(NufftValidation, BoundaryCoordinatesAreValid) {
  // 0 and nextafter(M, 0) are the edges of the half-open coordinate interval;
  // both must plan and transform.
  const GridDesc g = make_grid(2, 16, 2.0);
  datasets::SampleSet set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 64);
  const float edge = std::nextafter(static_cast<float>(set.m), 0.0f);
  set.coords[0][0] = 0.0f;
  set.coords[1][0] = edge;
  set.coords[0][1] = edge;
  set.coords[1][1] = 0.0f;
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const cvecf img = testing::random_image(g.image_elems(), 7);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(img.data(), raw.data());
  for (const cfloat v : raw) {
    ASSERT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  }
}

TEST(NufftValidation, AllSamplesInOneCellStillTransform) {
  // A degenerate trajectory collapses the preprocessing histogram into a
  // single bin; partitioning and task-graph construction must still produce
  // a working plan. With identical coordinates every forward output is the
  // same value.
  const GridDesc g = make_grid(2, 16, 2.0);
  datasets::SampleSet set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 64);
  for (auto& c : set.coords[0]) c = 7.25f;
  for (auto& c : set.coords[1]) c = 9.5f;
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, set, cfg);
  const cvecf img = testing::random_image(g.image_elems(), 11);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(img.data(), raw.data());
  for (index_t i = 1; i < set.count(); ++i) {
    ASSERT_EQ(raw[static_cast<std::size_t>(i)], raw[0]) << "sample " << i;
  }
  cvecf back(static_cast<std::size_t>(g.image_elems()));
  plan.adjoint(raw.data(), back.data());
  for (const cfloat v : back) {
    ASSERT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  }
}

TEST(NufftRoundTrip, AdjointOfForwardPreservesImageShape) {
  // AᴴA is approximately a (dataset-dependent) positive operator; the image
  // energy must survive a round trip and correlate strongly with the input
  // for dense sampling.
  const GridDesc g = make_grid(2, 24, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 24, 4000);
  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, set, cfg);
  const cvecf img = testing::random_image(g.image_elems(), 33);
  cvecf raw(static_cast<std::size_t>(set.count()));
  cvecf back(static_cast<std::size_t>(g.image_elems()));
  plan.forward(img.data(), raw.data());
  plan.adjoint(raw.data(), back.data());
  cdouble corr(0, 0);
  double n1 = 0, n2 = 0;
  for (index_t i = 0; i < g.image_elems(); ++i) {
    const cdouble a(img[static_cast<std::size_t>(i)].real(), img[static_cast<std::size_t>(i)].imag());
    const cdouble b(back[static_cast<std::size_t>(i)].real(), back[static_cast<std::size_t>(i)].imag());
    corr += a * std::conj(b);
    n1 += std::norm(a);
    n2 += std::norm(b);
  }
  EXPECT_GT(std::abs(corr) / std::sqrt(n1 * n2), 0.5);
}

}  // namespace
}  // namespace nufft
