// Tests for the batched execution subsystem (src/exec/): BatchNufft
// equivalence against repeated single applies, PlanRegistry single-flight /
// LRU / spill behaviour, and concurrent NufftEngine submission. This
// executable carries the `concurrency` ctest label and is the target of the
// -DNUFFT_SANITIZE=thread build.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <limits>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "core/convolution_avx2.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "exec/batch_nufft.hpp"
#include "exec/engine.hpp"
#include "exec/plan_registry.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;
using exec::BatchNufft;
using exec::NufftEngine;
using exec::PlanRegistry;

constexpr index_t kBatch = 5;

struct Fixture {
  GridDesc g;
  datasets::SampleSet set;
  std::vector<cvecf> images;  // kBatch random images
  std::vector<cvecf> raws;    // kBatch random sample vectors
};

Fixture make_fixture(int dim) {
  Fixture f;
  const index_t n = dim == 3 ? 12 : (dim == 2 ? 20 : 48);
  f.g = make_grid(dim, n, 2.0);
  f.set = testing::small_trajectory(TrajectoryType::kRadial, dim, n, dim == 1 ? 100 : 400);
  for (index_t b = 0; b < kBatch; ++b) {
    f.images.push_back(testing::random_image(f.g.image_elems(), 100 + b));
    f.raws.push_back(testing::random_raw(f.set.count(), 200 + b));
  }
  return f;
}

bool bitwise_equal(const cfloat* a, const cfloat* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(cfloat)) == 0;
}

// --- BatchNufft vs. repeated single applies -------------------------------

class BatchEquivalence : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BatchEquivalence, ForwardScalarSingleThreadIsBitExact) {
  const auto [dim, chunked] = GetParam();
  Fixture f = make_fixture(dim);
  PlanConfig cfg;
  cfg.use_simd = false;
  cfg.threads = 1;
  Nufft plan(f.g, f.set, cfg);

  std::vector<cvecf> ref(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  for (index_t b = 0; b < kBatch; ++b) plan.forward(f.images[b].data(), ref[b].data());

  BatchNufft batch(plan, chunked ? 2 : kBatch);
  std::vector<const cfloat*> in;
  std::vector<cfloat*> out;
  std::vector<cvecf> got(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  for (index_t b = 0; b < kBatch; ++b) {
    in.push_back(f.images[b].data());
    out.push_back(got[b].data());
  }
  batch.forward(in.data(), out.data(), kBatch);

  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_TRUE(bitwise_equal(got[b].data(), ref[b].data(), f.set.count())) << "slice " << b;
  }
}

TEST_P(BatchEquivalence, AdjointScalarSingleThreadIsBitExact) {
  const auto [dim, chunked] = GetParam();
  Fixture f = make_fixture(dim);
  PlanConfig cfg;
  cfg.use_simd = false;
  cfg.threads = 1;
  Nufft plan(f.g, f.set, cfg);

  std::vector<cvecf> ref(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) plan.adjoint(f.raws[b].data(), ref[b].data());

  BatchNufft batch(plan, chunked ? 2 : kBatch);
  std::vector<const cfloat*> in;
  std::vector<cfloat*> out;
  std::vector<cvecf> got(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) {
    in.push_back(f.raws[b].data());
    out.push_back(got[b].data());
  }
  batch.adjoint(in.data(), out.data(), kBatch);

  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_TRUE(bitwise_equal(got[b].data(), ref[b].data(), f.g.image_elems()))
        << "slice " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BatchEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()),
                         [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
                           return std::to_string(std::get<0>(info.param)) + "d" +
                                  (std::get<1>(info.param) ? "_chunked" : "");
                         });

class BatchSimdEquivalence : public ::testing::TestWithParam<std::tuple<int, SimdIsa>> {};

TEST_P(BatchSimdEquivalence, MatchesSinglesToRounding) {
  const auto [dim, isa] = GetParam();
  if (isa == SimdIsa::kAvx2 && !avx2_available()) GTEST_SKIP() << "no AVX2";
  Fixture f = make_fixture(dim);
  PlanConfig cfg;
  cfg.use_simd = true;
  cfg.isa = isa;
  cfg.threads = 2;
  Nufft plan(f.g, f.set, cfg);

  std::vector<cvecf> fref(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  std::vector<cvecf> aref(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  for (index_t b = 0; b < kBatch; ++b) {
    plan.forward(f.images[b].data(), fref[b].data());
    plan.adjoint(f.raws[b].data(), aref[b].data());
  }

  // Contiguous-layout convenience API doubles as the layout test.
  cvecf imgs(static_cast<std::size_t>(kBatch * f.g.image_elems()));
  cvecf raws(static_cast<std::size_t>(kBatch * f.set.count()));
  for (index_t b = 0; b < kBatch; ++b) {
    std::memcpy(imgs.data() + b * f.g.image_elems(), f.images[b].data(),
                static_cast<std::size_t>(f.g.image_elems()) * sizeof(cfloat));
    std::memcpy(raws.data() + b * f.set.count(), f.raws[b].data(),
                static_cast<std::size_t>(f.set.count()) * sizeof(cfloat));
  }
  cvecf fgot(static_cast<std::size_t>(kBatch * f.set.count()));
  cvecf agot(static_cast<std::size_t>(kBatch * f.g.image_elems()));
  BatchNufft batch(plan, kBatch);
  batch.forward(imgs.data(), fgot.data(), kBatch);
  batch.adjoint(raws.data(), agot.data(), kBatch);

  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_LT(testing::rel_err(fgot.data() + b * f.set.count(), fref[b].data(), f.set.count()),
              1e-5)
        << "fwd slice " << b;
    EXPECT_LT(testing::rel_err(agot.data() + b * f.g.image_elems(), aref[b].data(),
                               f.g.image_elems()),
              1e-5)
        << "adj slice " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(DimsIsa, BatchSimdEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(SimdIsa::kSse, SimdIsa::kAvx2)),
                         [](const ::testing::TestParamInfo<std::tuple<int, SimdIsa>>& info) {
                           return std::to_string(std::get<0>(info.param)) + "d_" +
                                  (std::get<1>(info.param) == SimdIsa::kSse ? "sse" : "avx2");
                         });

// --- PlanRegistry ----------------------------------------------------------

TEST(PlanRegistry, SingleFlightDeduplicatesConcurrentBuilds) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;

  constexpr int kRequesters = 8;
  std::vector<std::shared_ptr<const Nufft>> plans(kRequesters);
  {
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int t = 0; t < kRequesters; ++t) {
      threads.emplace_back([&, t] {
        ++ready;
        while (ready.load() < kRequesters) std::this_thread::yield();
        plans[static_cast<std::size_t>(t)] = registry.acquire(f.g, f.set, cfg);
      });
    }
    for (auto& t : threads) t.join();
  }

  for (int t = 1; t < kRequesters; ++t) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)].get(), plans[0].get());
  }
  const auto st = registry.stats();
  EXPECT_EQ(st.misses, 1u);  // exactly one build
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kRequesters - 1));
  EXPECT_EQ(registry.resident_count(), 1u);
  EXPECT_GT(registry.resident_bytes(), 0u);
}

TEST(PlanRegistry, DistinctConfigsGetDistinctPlans) {
  Fixture f = make_fixture(2);
  PlanRegistry registry;
  PlanConfig a;
  a.threads = 1;
  PlanConfig b = a;
  b.kernel_radius = 3.0;
  const auto pa = registry.acquire(f.g, f.set, a);
  const auto pb = registry.acquire(f.g, f.set, b);
  EXPECT_NE(pa.get(), pb.get());
  EXPECT_EQ(registry.resident_count(), 2u);
  EXPECT_EQ(registry.acquire(f.g, f.set, a).get(), pa.get());
}

TEST(PlanRegistry, KernelFamilyIsPartOfPlanIdentity) {
  // Kaiser-Bessel and exponential-of-semicircle plans over the same grid and
  // trajectory must never alias — the kernel family, radius, LUT density and
  // weight evaluator are all part of the content hash.
  Fixture f = make_fixture(2);
  PlanRegistry registry;
  PlanConfig kb;
  kb.threads = 1;
  PlanConfig es = kb;
  es.kernel = kernels::KernelType::kEs;
  es.eval = kernels::KernelEval::kHorner;
  EXPECT_NE(PlanRegistry::make_key(f.g, f.set, kb), PlanRegistry::make_key(f.g, f.set, es));

  const auto pa = registry.acquire(f.g, f.set, kb);
  const auto pb = registry.acquire(f.g, f.set, es);
  EXPECT_NE(pa.get(), pb.get());
  EXPECT_EQ(registry.resident_count(), 2u);
  // Re-acquiring each family hits its own entry.
  EXPECT_EQ(registry.acquire(f.g, f.set, kb).get(), pa.get());
  EXPECT_EQ(registry.acquire(f.g, f.set, es).get(), pb.get());

  // Tolerance-driven configs key on the tolerance too: the same family at a
  // different tolerance is a different plan.
  PlanConfig tol_a = kb;
  tol_a.tolerance = 1e-3;
  PlanConfig tol_b = kb;
  tol_b.tolerance = 1e-4;
  EXPECT_NE(PlanRegistry::make_key(f.g, f.set, tol_a),
            PlanRegistry::make_key(f.g, f.set, tol_b));
}

TEST(PlanRegistry, LruEvictionSpillsAndRestores) {
  Fixture f = make_fixture(2);
  const auto set2 =
      testing::small_trajectory(TrajectoryType::kSpiral, 2, f.g.n[0], 400);
  PlanConfig cfg;
  cfg.threads = 1;

  const auto dir =
      std::filesystem::temp_directory_path() / "nufft_registry_spill_test";
  std::filesystem::remove_all(dir);
  exec::RegistryConfig rc;
  rc.max_bytes = 1;  // every second resident plan forces an eviction
  rc.spill_dir = dir.string();
  PlanRegistry registry(rc);

  cvecf ref(static_cast<std::size_t>(f.set.count()));
  {
    const auto plan_a = registry.acquire(f.g, f.set, cfg);
    Workspace ws = plan_a->make_workspace();
    ThreadPool pool(1);
    plan_a->forward(f.images[0].data(), ref.data(), ws, pool);
  }
  // Second key exceeds the 1-byte budget: the LRU entry (plan A) is evicted
  // and, because a spill_dir is set, serialized to disk.
  registry.acquire(f.g, set2, cfg);
  auto st = registry.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.spills, 1u);
  EXPECT_EQ(registry.resident_count(), 1u);

  // Re-acquiring plan A restores the preprocessing from the spill file and
  // produces the same transform.
  const auto plan_a2 = registry.acquire(f.g, f.set, cfg);
  st = registry.stats();
  EXPECT_EQ(st.spill_restores, 1u);
  cvecf got(static_cast<std::size_t>(f.set.count()));
  Workspace ws = plan_a2->make_workspace();
  ThreadPool pool(1);
  plan_a2->forward(f.images[0].data(), got.data(), ws, pool);
  EXPECT_TRUE(bitwise_equal(got.data(), ref.data(), f.set.count()));

  std::filesystem::remove_all(dir);
}

TEST(PlanRegistry, KeyIsOrderAndContentSensitive) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  datasets::SampleSet reordered = f.set;
  std::swap(reordered.coords[0][0], reordered.coords[0][1]);
  std::swap(reordered.coords[1][0], reordered.coords[1][1]);
  EXPECT_NE(PlanRegistry::make_key(f.g, f.set, cfg),
            PlanRegistry::make_key(f.g, reordered, cfg));
  PlanConfig cfg2 = cfg;
  cfg2.priority_queue = false;
  EXPECT_NE(PlanRegistry::make_key(f.g, f.set, cfg),
            PlanRegistry::make_key(f.g, f.set, cfg2));
  EXPECT_EQ(PlanRegistry::make_key(f.g, f.set, cfg), PlanRegistry::make_key(f.g, f.set, cfg));
}

// --- NufftEngine -----------------------------------------------------------

TEST(NufftEngine, ConcurrentSubmitMatchesSequentialBitwise) {
  Fixture f = make_fixture(3);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);

  // Sequential reference through the same leased-workspace path.
  std::vector<cvecf> fref(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  std::vector<cvecf> aref(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  {
    Workspace ws = plan->make_workspace();
    ThreadPool pool(1);
    for (index_t b = 0; b < kBatch; ++b) {
      plan->forward(f.images[b].data(), fref[b].data(), ws, pool);
      plan->adjoint(f.raws[b].data(), aref[b].data(), ws, pool);
    }
  }

  exec::EngineConfig ec;
  ec.workers = 2;
  ec.threads_per_worker = 1;
  NufftEngine engine(ec);

  // Two application threads race submissions against one shared plan.
  std::vector<cvecf> fgot(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  std::vector<cvecf> agot(kBatch, cvecf(static_cast<std::size_t>(f.g.image_elems())));
  std::vector<std::future<exec::JobResult>> futs(2 * kBatch);
  {
    std::vector<std::thread> submitters;
    submitters.emplace_back([&] {
      for (index_t b = 0; b < kBatch; ++b) {
        futs[static_cast<std::size_t>(b)] = engine.submit(
            exec::Op::kForward, plan, f.images[b].data(), fgot[b].data());
      }
    });
    submitters.emplace_back([&] {
      for (index_t b = 0; b < kBatch; ++b) {
        futs[static_cast<std::size_t>(kBatch + b)] = engine.submit(
            exec::Op::kAdjoint, plan, f.raws[b].data(), agot[b].data());
      }
    });
    for (auto& t : submitters) t.join();
  }
  for (auto& fut : futs) {
    const auto r = fut.get();
    EXPECT_GT(r.stats.total_s, 0.0);
  }
  engine.wait_idle();

  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_TRUE(bitwise_equal(fgot[b].data(), fref[b].data(), f.set.count()))
        << "fwd job " << b;
    EXPECT_TRUE(bitwise_equal(agot[b].data(), aref[b].data(), f.g.image_elems()))
        << "adj job " << b;
  }
}

TEST(NufftEngine, BatchedJobsMatchSingles) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);

  std::vector<cvecf> ref(kBatch, cvecf(static_cast<std::size_t>(f.set.count())));
  {
    Workspace ws = plan->make_workspace();
    ThreadPool pool(1);
    for (index_t b = 0; b < kBatch; ++b) {
      plan->forward(f.images[b].data(), ref[b].data(), ws, pool);
    }
  }

  cvecf imgs(static_cast<std::size_t>(kBatch * f.g.image_elems()));
  for (index_t b = 0; b < kBatch; ++b) {
    std::memcpy(imgs.data() + b * f.g.image_elems(), f.images[b].data(),
                static_cast<std::size_t>(f.g.image_elems()) * sizeof(cfloat));
  }
  cvecf got(static_cast<std::size_t>(kBatch * f.set.count()));

  NufftEngine engine;
  auto fut = engine.submit(exec::Op::kForward, plan, imgs.data(), got.data(), kBatch);
  const auto r = fut.get();
  EXPECT_GT(r.stats.total_s, 0.0);
  for (index_t b = 0; b < kBatch; ++b) {
    EXPECT_LT(testing::rel_err(got.data() + b * f.set.count(), ref[b].data(), f.set.count()),
              1e-5)
        << "slice " << b;
  }
}

// --- Failure handling ------------------------------------------------------

// A sample set whose first coordinate is NaN: plan construction fails
// deterministically with kInvalidInput, giving the failure-path tests a
// reproducible "broken build" without compiled-in fault injection.
datasets::SampleSet poisoned_set(const Fixture& f) {
  datasets::SampleSet bad = f.set;
  bad.coords[0][0] = std::numeric_limits<float>::quiet_NaN();
  return bad;
}

ErrorCode future_error_code(std::future<exec::JobResult>& fut) {
  try {
    fut.get();
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "job unexpectedly succeeded";
  return ErrorCode::kInternal;
}

TEST(PlanRegistry, FailedBuildPropagatesToAllWaitersAndLeavesRegistryUsable) {
  Fixture f = make_fixture(2);
  const auto bad = poisoned_set(f);
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;

  // Every concurrent requester of the doomed key must observe the build
  // error — whether it ran the build itself, waited on the single-flight
  // future, or was rejected by quarantine after the threshold.
  constexpr int kRequesters = 6;
  std::atomic<int> invalid_input{0};
  {
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int t = 0; t < kRequesters; ++t) {
      threads.emplace_back([&] {
        ++ready;
        while (ready.load() < kRequesters) std::this_thread::yield();
        try {
          registry.acquire(f.g, bad, cfg);
        } catch (const Error& e) {
          if (e.code() == ErrorCode::kInvalidInput) ++invalid_input;
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(invalid_input.load(), kRequesters);
  EXPECT_GE(registry.stats().build_failures, 1u);

  // The failure never cached: the registry is empty and still serves good
  // keys.
  EXPECT_EQ(registry.resident_count(), 0u);
  EXPECT_NE(registry.acquire(f.g, f.set, cfg), nullptr);
  EXPECT_EQ(registry.resident_count(), 1u);
}

TEST(PlanRegistry, RepeatedFailuresQuarantineTheKey) {
  Fixture f = make_fixture(2);
  const auto bad = poisoned_set(f);
  PlanConfig cfg;
  cfg.threads = 1;
  exec::RegistryConfig rc;
  rc.quarantine_threshold = 2;
  rc.quarantine_base_backoff = std::chrono::milliseconds{60000};  // outlasts the test
  PlanRegistry registry(rc);

  for (int i = 0; i < rc.quarantine_threshold; ++i) {
    EXPECT_THROW(registry.acquire(f.g, bad, cfg), Error) << "attempt " << i;
  }
  // Inside the backoff window the key fails fast — with the original code,
  // without re-running the build.
  try {
    registry.acquire(f.g, bad, cfg);
    FAIL() << "expected quarantine rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
  const auto st = registry.stats();
  EXPECT_EQ(st.build_failures, static_cast<std::uint64_t>(rc.quarantine_threshold));
  EXPECT_EQ(st.quarantine_rejects, 1u);
  EXPECT_EQ(st.misses, static_cast<std::uint64_t>(rc.quarantine_threshold));

  // Quarantine is per-key: other keys build normally.
  EXPECT_NE(registry.acquire(f.g, f.set, cfg), nullptr);
}

TEST(NufftEngine, SubmitAfterShutdownResolvesCancelled) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);
  cvecf got(static_cast<std::size_t>(f.set.count()));

  NufftEngine engine;
  engine.shutdown();
  auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data());
  EXPECT_EQ(future_error_code(fut), ErrorCode::kCancelled);
}

TEST(NufftEngine, ShutdownVsSubmitRaceIsSafe) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);

  // Submitters race the shutdown: each job either ran (valid result) or was
  // rejected with kCancelled — never a crash, hang, or leaked promise.
  constexpr int kSubmitters = 3;
  constexpr index_t kJobs = 6;
  std::vector<cvecf> outs(static_cast<std::size_t>(kSubmitters * kJobs),
                          cvecf(static_cast<std::size_t>(f.set.count())));
  std::vector<std::future<exec::JobResult>> futs(static_cast<std::size_t>(kSubmitters * kJobs));
  NufftEngine engine;
  {
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        ++ready;
        while (ready.load() < kSubmitters + 1) std::this_thread::yield();
        for (index_t j = 0; j < kJobs; ++j) {
          const auto slot = static_cast<std::size_t>(t * kJobs + j);
          futs[slot] = engine.submit(exec::Op::kForward, plan, f.images[0].data(),
                                     outs[slot].data());
        }
      });
    }
    threads.emplace_back([&] {
      ++ready;
      while (ready.load() < kSubmitters + 1) std::this_thread::yield();
      engine.shutdown();
    });
    for (auto& t : threads) t.join();
  }

  int ran = 0, cancelled = 0;
  for (auto& fut : futs) {
    try {
      fut.get();
      ++ran;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(ran + cancelled, kSubmitters * static_cast<int>(kJobs));
}

TEST(NufftEngine, PreCancelledTokenResolvesCancelled) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);
  cvecf got(static_cast<std::size_t>(f.set.count()));

  exec::JobOptions opts;
  opts.cancel = std::make_shared<exec::CancelToken>();
  opts.cancel->cancel();
  NufftEngine engine;
  auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data(), 1, opts);
  EXPECT_EQ(future_error_code(fut), ErrorCode::kCancelled);
}

TEST(NufftEngine, ZeroTimeoutResolvesTimeout) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);
  cvecf got(static_cast<std::size_t>(f.set.count()));

  // timeout == 0 stamps a deadline that is already expired at dispatch, so
  // the timeout path is deterministic even on an arbitrarily fast machine.
  exec::JobOptions opts;
  opts.timeout = std::chrono::milliseconds{0};
  NufftEngine engine;
  auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(), got.data(), 1, opts);
  EXPECT_EQ(future_error_code(fut), ErrorCode::kTimeout);
}

TEST(NufftEngine, RegistryBuildFailureReachesTheFuture) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;
  auto bad = std::make_shared<const datasets::SampleSet>(poisoned_set(f));
  cvecf got(static_cast<std::size_t>(f.set.count()));

  NufftEngine engine;
  auto fut =
      engine.submit(exec::Op::kForward, registry, f.g, bad, cfg, f.images[0].data(), got.data());
  EXPECT_EQ(future_error_code(fut), ErrorCode::kInvalidInput);

  // The same engine and registry still serve good work afterwards.
  auto samples = std::make_shared<const datasets::SampleSet>(f.set);
  auto ok = engine.submit(exec::Op::kForward, registry, f.g, samples, cfg, f.images[0].data(),
                          got.data());
  EXPECT_GT(ok.get().stats.total_s, 0.0);
}

TEST(NufftEngine, RegistrySubmitResolvesPlanInWorker) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  PlanRegistry registry;
  auto samples = std::make_shared<const datasets::SampleSet>(f.set);

  cvecf got(static_cast<std::size_t>(f.set.count()));
  NufftEngine engine;
  auto fut = engine.submit(exec::Op::kForward, registry, f.g, samples, cfg,
                           f.images[0].data(), got.data());
  fut.get();
  EXPECT_EQ(registry.stats().misses, 1u);

  const auto plan = registry.acquire(f.g, f.set, cfg);
  cvecf ref(static_cast<std::size_t>(f.set.count()));
  Workspace ws = plan->make_workspace();
  ThreadPool pool(1);
  plan->forward(f.images[0].data(), ref.data(), ws, pool);
  EXPECT_TRUE(bitwise_equal(got.data(), ref.data(), f.set.count()));
}

TEST(NufftEngine, ConcurrentShutdownsAndSubmitsAreSafe) {
  // Regression for the engine's join race: shutdown() used to call
  // std::thread::join unguarded, so "destructor while another thread calls
  // shutdown()" — the natural server teardown sequence — was a data race on
  // the join flag (TSan-visible) and double-join UB. With std::call_once
  // every concurrent shutdown caller blocks until the single drain finishes.
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  auto plan = std::make_shared<const Nufft>(f.g, f.set, cfg);

  for (int round = 0; round < 4; ++round) {
    constexpr int kShutdowns = 3;
    constexpr int kSubmitters = 2;
    constexpr index_t kJobs = 4;
    std::vector<cvecf> outs(static_cast<std::size_t>(kSubmitters * kJobs),
                            cvecf(static_cast<std::size_t>(f.set.count())));
    NufftEngine engine;
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    const int parties = kShutdowns + kSubmitters;
    for (int t = 0; t < kShutdowns; ++t) {
      threads.emplace_back([&] {
        ++ready;
        while (ready.load() < parties) std::this_thread::yield();
        engine.shutdown();
        // After shutdown returns, submissions must reject deterministically.
        cvecf post(static_cast<std::size_t>(f.set.count()));
        auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(), post.data());
        EXPECT_EQ(future_error_code(fut), ErrorCode::kCancelled);
      });
    }
    std::atomic<int> completed{0};
    for (int t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        ++ready;
        while (ready.load() < parties) std::this_thread::yield();
        for (index_t j = 0; j < kJobs; ++j) {
          exec::JobOptions opts;
          opts.on_complete = [&] { ++completed; };
          auto fut = engine.submit(exec::Op::kForward, plan, f.images[0].data(),
                                   outs[static_cast<std::size_t>(t * kJobs + j)].data(), 1,
                                   opts);
          try {
            fut.get();
          } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::kCancelled);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // on_complete fires exactly once per job on every path, including the
    // submit-after-shutdown rejection.
    EXPECT_EQ(completed.load(), kSubmitters * kJobs);
  }
}

// --- tenant quota accounting ------------------------------------------------

TEST(PlanRegistryQuota, ByteAndPlanBudgetsRejectAsOverloaded) {
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  exec::RegistryConfig rc;
  rc.tenant_max_plans = 1;
  PlanRegistry registry(rc);

  auto plan = registry.acquire(f.g, f.set, cfg, "a");
  EXPECT_EQ(registry.tenant_plans("a"), 1u);
  EXPECT_GT(registry.tenant_bytes("a"), 0u);

  // Re-acquiring the same key is not a second charge.
  auto again = registry.acquire(f.g, f.set, cfg, "a");
  EXPECT_EQ(plan.get(), again.get());
  EXPECT_EQ(registry.tenant_plans("a"), 1u);

  // A second distinct key busts tenant a's plan quota …
  PlanConfig cfg2 = cfg;
  cfg2.reorder = !cfg.reorder;
  try {
    registry.acquire(f.g, f.set, cfg2, "a");
    FAIL() << "expected quota rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  EXPECT_EQ(registry.stats().quota_rejects, 1u);

  // … while tenant b and the unmetered empty tenant are unaffected.
  auto other = registry.acquire(f.g, f.set, cfg2, "b");
  EXPECT_NE(other.get(), plan.get());
  auto unmetered = registry.acquire(f.g, f.set, cfg, "");
  EXPECT_EQ(unmetered.get(), plan.get());
  EXPECT_EQ(registry.tenant_plans(""), 0u);

  // Byte quotas reject the same way when the reservation cannot fit.
  exec::RegistryConfig tiny;
  tiny.tenant_max_bytes = 1;
  PlanRegistry small(tiny);
  try {
    small.acquire(f.g, f.set, cfg, "c");
    FAIL() << "expected byte-quota rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  EXPECT_EQ(small.tenant_bytes("c"), 0u);
}

TEST(PlanRegistryQuota, FailedBuildQuarantineAndEvictionAllReleaseCharges) {
  // The full lifecycle the quota fix pins: a failing build must refund its
  // reservation (it used to leak, wedging the tenant even though no plan
  // existed), quarantined retries must not accumulate charges, and LRU
  // eviction of a ready entry must release its tenant charges.
  Fixture f = make_fixture(2);
  const auto bad = poisoned_set(f);
  PlanConfig cfg;
  cfg.threads = 1;
  exec::RegistryConfig rc;
  rc.tenant_max_plans = 2;
  rc.quarantine_threshold = 2;
  rc.quarantine_base_backoff = std::chrono::milliseconds{60000};  // outlasts the test
  PlanRegistry registry(rc);

  // Build-fail cycle: every attempt (real builds and quarantine fast-fails)
  // charges the reservation at admission and refunds it on the way out.
  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(registry.acquire(f.g, bad, cfg, "t"), Error) << "attempt " << i;
    EXPECT_EQ(registry.tenant_bytes("t"), 0u) << "attempt " << i;
    EXPECT_EQ(registry.tenant_plans("t"), 0u) << "attempt " << i;
  }
  EXPECT_GE(registry.stats().quarantine_rejects, 1u);

  // The tenant's quota is fully available: two healthy plans fit.
  auto p1 = registry.acquire(f.g, f.set, cfg, "t");
  PlanConfig cfg2 = cfg;
  cfg2.reorder = !cfg.reorder;
  auto p2 = registry.acquire(f.g, f.set, cfg2, "t");
  EXPECT_EQ(registry.tenant_plans("t"), 2u);
  const auto charged = registry.tenant_bytes("t");
  EXPECT_GT(charged, 0u);

  // Shrink the byte budget so the next insert evicts the LRU entry (p1);
  // its charge against the tenant must be released with it.
  exec::RegistryConfig lru;
  lru.tenant_max_plans = 4;
  lru.max_bytes = 1;  // evict everything not just inserted
  PlanRegistry evicting(lru);
  evicting.acquire(f.g, f.set, cfg, "t");
  EXPECT_EQ(evicting.tenant_plans("t"), 1u);
  evicting.acquire(f.g, f.set, cfg2, "t");  // evicts the first entry
  EXPECT_EQ(evicting.stats().evictions, 1u);
  EXPECT_EQ(evicting.tenant_plans("t"), 1u)
      << "eviction must release the evicted entry's quota charge";
  EXPECT_EQ(evicting.tenant_bytes("t"), evicting.resident_bytes());
}

TEST(PlanRegistryQuota, EvictionDefersRefundWhileHandlesAreHeld) {
  // The quota-bypass fix: LRU eviction drops only the registry's reference,
  // so a tenant whose handles keep the plan resident must stay charged until
  // the last handle dies. Without this, register → evict → register cycles
  // would pin arbitrarily more memory than tenant_max_bytes/plans admit.
  Fixture f = make_fixture(2);
  PlanConfig cfg;
  cfg.threads = 1;
  PlanConfig cfg2 = cfg;
  cfg2.reorder = !cfg.reorder;
  PlanConfig cfg3 = cfg;
  cfg3.use_simd = !cfg.use_simd;

  exec::RegistryConfig rc;
  rc.max_bytes = 1;         // every insert evicts the previous entry
  rc.tenant_max_plans = 2;  // the budget the eviction cycle used to escape
  PlanRegistry registry(rc);

  auto held = registry.acquire(f.g, f.set, cfg, "t");
  registry.acquire(f.g, f.set, cfg2, "t");  // evicts key 1; `held` keeps it alive
  EXPECT_EQ(registry.stats().evictions, 1u);
  EXPECT_EQ(registry.tenant_plans("t"), 2u)
      << "a held handle must stay charged across eviction";
  EXPECT_GT(registry.tenant_bytes("t"), registry.resident_bytes());

  // The quota still binds while the evicted plan is held.
  try {
    registry.acquire(f.g, f.set, cfg3, "t");
    FAIL() << "expected quota rejection while the evicted plan is still held";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }

  // Dropping the last handle releases the deferred charge and unblocks the
  // tenant (the third key evicts the unheld second, whose refund is instant).
  held.reset();
  EXPECT_EQ(registry.tenant_plans("t"), 1u);
  EXPECT_EQ(registry.tenant_bytes("t"), registry.resident_bytes());
  auto third = registry.acquire(f.g, f.set, cfg3, "t");
  EXPECT_NE(third, nullptr);
  EXPECT_EQ(registry.tenant_plans("t"), 1u);
  EXPECT_EQ(registry.tenant_bytes("t"), registry.resident_bytes());
}

}  // namespace
}  // namespace nufft
