// Tests for the MRI application substrate: phantom, coil maps, CG solver,
// and the end-to-end iterative multichannel reconstruction.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nufft.hpp"
#include "mri/cg.hpp"
#include "mri/coils.hpp"
#include "mri/phantom.hpp"
#include "mri/recon.hpp"
#include "test_util.hpp"

namespace nufft::mri {
namespace {

using datasets::TrajectoryType;

TEST(Phantom, RealValuedAndBounded) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const cvecf img = make_phantom(g);
  ASSERT_EQ(static_cast<index_t>(img.size()), g.image_elems());
  double maxv = 0.0;
  for (const auto& v : img) {
    EXPECT_EQ(v.imag(), 0.0f);
    EXPECT_GE(v.real(), -0.5f);
    maxv = std::max(maxv, static_cast<double>(v.real()));
  }
  EXPECT_GT(maxv, 0.5);  // skull intensity present
}

TEST(Phantom, HasInteriorStructure) {
  const GridDesc g = make_grid(2, 64, 2.0);
  const cvecf img = make_phantom(g);
  // Center (inside brain) differs from skull shell value.
  const index_t c = (64 / 2) * 64 + 64 / 2;
  const float center = img[static_cast<std::size_t>(c)].real();
  EXPECT_GT(center, 0.0f);
  EXPECT_LT(center, 1.0f);
  // Corner is empty.
  EXPECT_EQ(img[0].real(), 0.0f);
}

TEST(Phantom, Works1dAnd3d) {
  for (int dim : {1, 3}) {
    const GridDesc g = make_grid(dim, 16, 2.0);
    const cvecf img = make_phantom(g);
    double energy = 0.0;
    for (const auto& v : img) energy += std::norm(v);
    EXPECT_GT(energy, 0.0) << "dim=" << dim;
  }
}

TEST(Nrmse, ZeroForIdenticalAndPositiveOtherwise) {
  const cvecf a = testing::random_image(100, 1);
  EXPECT_EQ(nrmse(a.data(), a.data(), 100), 0.0);
  cvecf b = a;
  b[0] += cfloat(0.5f, 0.0f);
  EXPECT_GT(nrmse(b.data(), a.data(), 100), 0.0);
}

TEST(Coils, MapsAreSmoothAndDistinct) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto maps = make_coil_maps(g, 4);
  ASSERT_EQ(maps.size(), 4u);
  for (const auto& m : maps) {
    ASSERT_EQ(static_cast<index_t>(m.size()), g.image_elems());
    // Smoothness: neighbouring pixels within a row differ little (row
    // boundaries jump across the whole field of view).
    for (index_t r = 0; r < 32; ++r) {
      for (index_t i = 1; i < 32; ++i) {
        const auto a = static_cast<std::size_t>(r * 32 + i);
        ASSERT_LT(std::abs(m[a] - m[a - 1]), 0.2f);
      }
    }
  }
  // Distinct coils.
  EXPECT_GT(testing::rel_err(maps[0].data(), maps[1].data(), g.image_elems()), 0.1);
}

TEST(Coils, CombinedMagnitudeCoversFov) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto maps = make_coil_maps(g, 8);
  for (index_t i = 0; i < g.image_elems(); ++i) {
    double ssq = 0.0;
    for (const auto& m : maps) ssq += std::norm(m[static_cast<std::size_t>(i)]);
    ASSERT_GT(ssq, 0.05) << "coil coverage hole at " << i;
  }
}

TEST(Coils, AdjointAccumulationIsConjugate) {
  const index_t n = 50;
  const cvecf map = testing::random_image(n, 2);
  const cvecf x = testing::random_image(n, 3);
  cvecf y(static_cast<std::size_t>(n), cfloat(0, 0));
  apply_coil(map.data(), x.data(), y.data(), n);
  cvecf back(static_cast<std::size_t>(n), cfloat(0, 0));
  accumulate_coil_adjoint(map.data(), y.data(), back.data(), n);
  for (index_t i = 0; i < n; ++i) {
    const cfloat want = map[static_cast<std::size_t>(i)] *
                        std::conj(map[static_cast<std::size_t>(i)]) *
                        x[static_cast<std::size_t>(i)];
    ASSERT_NEAR(std::abs(back[static_cast<std::size_t>(i)] - want), 0.0, 1e-5);
  }
}

TEST(Cg, SolvesDiagonalSystemExactly) {
  // Normal op = diag(d), rhs = d·x_true → CG must recover x_true quickly.
  const index_t n = 64;
  fvec d(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = 1.0f + 0.1f * (i % 7);
  const cvecf x_true = testing::random_image(n, 4);
  cvecf rhs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    rhs[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] * x_true[static_cast<std::size_t>(i)];
  }
  cvecf x(static_cast<std::size_t>(n));
  CgOptions opt;
  opt.max_iters = 50;
  opt.tolerance = 1e-10;
  const auto result = conjugate_gradient(
      [&](const cfloat* in, cfloat* out) {
        for (index_t i = 0; i < n; ++i) out[i] = d[static_cast<std::size_t>(i)] * in[i];
      },
      rhs.data(), x.data(), n, opt);
  EXPECT_LE(result.iterations, 50);
  EXPECT_LT(testing::rel_err(x.data(), x_true.data(), n), 1e-5);
}

TEST(Cg, ResidualNormsDecreaseMonotonically) {
  const index_t n = 32;
  const cvecf rhs = testing::random_image(n, 5);
  cvecf x(static_cast<std::size_t>(n));
  CgOptions opt;
  opt.max_iters = 10;
  opt.tolerance = 0.0;
  const auto result = conjugate_gradient(
      [&](const cfloat* in, cfloat* out) {
        // SPD tridiagonal-ish operator.
        for (index_t i = 0; i < n; ++i) {
          cfloat acc = 4.0f * in[i];
          if (i > 0) acc += in[i - 1];
          if (i + 1 < n) acc += in[i + 1];
          out[i] = acc;
        }
      },
      rhs.data(), x.data(), n, opt);
  for (std::size_t i = 1; i < result.residual_norms.size(); ++i) {
    ASSERT_LT(result.residual_norms[i], result.residual_norms[i - 1] * 1.5);
  }
  EXPECT_LT(result.residual_norms.back(), result.residual_norms.front());
}

TEST(Cg, ZeroRhsReturnsZero) {
  const index_t n = 16;
  cvecf rhs(static_cast<std::size_t>(n), cfloat(0, 0));
  cvecf x(static_cast<std::size_t>(n), cfloat(1, 1));
  const auto result = conjugate_gradient(
      [&](const cfloat* in, cfloat* out) {
        for (index_t i = 0; i < n; ++i) out[i] = in[i];
      },
      rhs.data(), x.data(), n, CgOptions{});
  EXPECT_EQ(result.iterations, 0);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(x[static_cast<std::size_t>(i)], cfloat(0, 0));
}

TEST(Cg, TikhonovRegularizationShrinksSolution) {
  const index_t n = 32;
  const cvecf rhs = testing::random_image(n, 6);
  cvecf x0(static_cast<std::size_t>(n)), x1(static_cast<std::size_t>(n));
  auto op = [&](const cfloat* in, cfloat* out) {
    for (index_t i = 0; i < n; ++i) out[i] = 2.0f * in[i];
  };
  CgOptions opt;
  opt.max_iters = 30;
  conjugate_gradient(op, rhs.data(), x0.data(), n, opt);
  opt.lambda = 5.0;
  conjugate_gradient(op, rhs.data(), x1.data(), n, opt);
  double n0 = 0, n1 = 0;
  for (index_t i = 0; i < n; ++i) {
    n0 += std::norm(x0[static_cast<std::size_t>(i)]);
    n1 += std::norm(x1[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(n1, n0);
}

// ---- end-to-end multichannel reconstruction ----

TEST(Recon, IterationsImproveAccuracy) {
  const GridDesc g = make_grid(2, 32, 2.0);
  datasets::TrajectoryParams tp;
  tp.n = 32;
  tp.k = 64;
  tp.s = 48;  // dense radial sampling → well-conditioned problem
  const auto set = datasets::make_trajectory(TrajectoryType::kRadial, 2, tp);

  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, set, cfg);
  MultichannelRecon recon(plan, make_coil_maps(g, 4));

  const cvecf truth = make_phantom(g);
  const auto data = recon.simulate(truth.data());

  CgOptions opt;
  opt.tolerance = 0.0;
  opt.max_iters = 2;
  const auto r2 = recon.reconstruct(data, opt);
  opt.max_iters = 12;
  const auto r12 = recon.reconstruct(data, opt);

  const double e2 = nrmse(r2.image.data(), truth.data(), g.image_elems());
  const double e12 = nrmse(r12.image.data(), truth.data(), g.image_elems());
  EXPECT_LT(e12, e2);
  // Radial sampling covers the inscribed k-space disc only; the residual is
  // dominated by the unsampled corners of k-space, which bounds attainable
  // NRMSE for a sharp-edged phantom near ~0.3 at this tiny N.
  EXPECT_LT(e12, 0.33);
}

TEST(Recon, CountsNufftPairsPerIteration) {
  const GridDesc g = make_grid(2, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 1500);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const int coils = 3;
  MultichannelRecon recon(plan, make_coil_maps(g, coils));
  const cvecf truth = make_phantom(g);
  const auto data = recon.simulate(truth.data());
  CgOptions opt;
  opt.max_iters = 4;
  opt.tolerance = 0.0;
  const auto r = recon.reconstruct(data, opt);
  EXPECT_EQ(r.nufft_calls, static_cast<double>(coils * r.cg.iterations));
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Recon, SingleCoilUniformSensitivityRecoversPhantom) {
  const GridDesc g = make_grid(2, 24, 2.0);
  datasets::TrajectoryParams tp;
  tp.n = 24;
  tp.k = 48;
  tp.s = 40;
  const auto set = datasets::make_trajectory(TrajectoryType::kRadial, 2, tp);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  std::vector<cvecf> uniform(1);
  uniform[0].assign(static_cast<std::size_t>(g.image_elems()), cfloat(1.0f, 0.0f));
  MultichannelRecon recon(plan, std::move(uniform));
  const cvecf truth = make_phantom(g);
  const auto data = recon.simulate(truth.data());
  CgOptions opt;
  opt.max_iters = 15;
  opt.tolerance = 1e-9;
  const auto r = recon.reconstruct(data, opt);
  // Same k-space-corner bound as above.
  EXPECT_LT(nrmse(r.image.data(), truth.data(), g.image_elems()), 0.3);
}

}  // namespace
}  // namespace nufft::mri
