// Chaos suite (ctest label: chaos; requires -DNUFFT_FAULT_INJECT=ON).
//
// Where test_faults.cpp arms sites around individual components, this suite
// injects faults through the full serving path — decode, admission, build,
// dispatch, completion handoff, and a wedged apply — and checks the
// system-level contract: every request reaches exactly one outcome, the
// documented ErrorCode surfaces at the client, connections and accounting
// survive, and a resilient client recovers without duplicating work.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

static_assert(nufft::fault::enabled(),
              "test_chaos.cpp requires -DNUFFT_FAULT_INJECT=ON");

namespace nufft::serve {
namespace {

using datasets::TrajectoryType;

std::string unique_socket_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / ("nufft_chaos_" + std::to_string(::getpid()) + "_" + tag + "_" +
                 std::to_string(counter++) + ".sock"))
      .string();
}

struct Fixture {
  GridDesc g;
  datasets::SampleSet set;
  PlanConfig cfg;
  std::vector<cfloat> image;
};

Fixture make_fixture(std::uint64_t seed = 7) {
  Fixture f;
  const index_t n = 16;
  f.g = make_grid(2, n, 2.0);
  f.set = testing::small_trajectory(TrajectoryType::kRadial, 2, n, 300, seed);
  f.cfg.threads = 1;
  f.cfg.use_simd = false;
  const auto img = testing::random_image(f.g.image_elems(), seed + 1);
  f.image.assign(img.begin(), img.end());
  return f;
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

bool write_some(int fd, const Bytes& b) {
  std::size_t off = 0;
  while (off < b.size()) {
    const auto n = ::send(fd, b.data() + off, b.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<Frame> read_frames(int fd, std::size_t want) {
  std::vector<Frame> out;
  Bytes rx;
  std::uint8_t chunk[65536];
  while (out.size() < want) {
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    rx.insert(rx.end(), chunk, chunk + n);
    std::size_t off = 0;
    Frame f;
    while (off < rx.size()) {
      const std::size_t c = try_decode_frame(rx.data() + off, rx.size() - off, f);
      if (c == 0) break;
      off += c;
      out.push_back(f);
    }
    rx.erase(rx.begin(), rx.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return out;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

// A corrupted inbound stream costs that connection (kIoCorruption, stream
// poisoned, closed) — and the resilient client re-establishes a session and
// completes the work on the next attempt.
TEST_F(ChaosTest, DecodeFaultCostsTheConnectionButTheClientRecovers) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("decode");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "decode-tenant");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  fault::arm("serve.decode", 1);
  try {
    client.forward(plan_id, fx.image);
    FAIL() << "expected poisoned-stream error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoCorruption);
  }
  EXPECT_GE(server.stats().protocol_errors, 1u);

  // The server hung up; the next RPC reconnects transparently. The tenant
  // record died with the connection, so the plan is re-registered first —
  // the content-keyed registry makes that a cache hit.
  const auto plan_id2 = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto res = client.forward(plan_id2, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(server.stats().completed, 1u);
  server.stop();
}

TEST_F(ChaosTest, AdmissionFaultShedsAsOverloaded) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("admit");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "admit-tenant");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  fault::arm("serve.admission", 1);
  try {
    client.forward(plan_id, fx.image);
    FAIL() << "expected injected admission shed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    EXPECT_TRUE(is_retryable(e.code()));
  }
  // A shed is an answer, not a transport failure: same connection retries.
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_EQ(server.stats().shed_overload, 1u);
  server.stop();
}

TEST_F(ChaosTest, BuildFaultSurfacesAsBuildFailure) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("build");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "build-tenant");
  fault::arm("serve.build", 1);
  try {
    client.register_plan(fx.g, fx.set, fx.cfg);
    FAIL() << "expected injected build failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBuildFailure);
  }
  // The trigger is consumed and nothing broken was cached.
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  server.stop();
}

TEST_F(ChaosTest, DispatchFaultSurfacesAsResourceExhausted) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("dispatch");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "dispatch-tenant");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  fault::arm("serve.dispatch", 1);
  try {
    client.forward(plan_id, fx.image);
    FAIL() << "expected injected dispatch failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    EXPECT_TRUE(is_retryable(e.code()));
  }
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(fx.set.count()));
  const auto st = server.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.failed, 1u);
  server.stop();
}

// A dropped completion wake must delay a result, never lose it: the poll
// loop's bounded timeout sweeps the completion queue regardless.
TEST_F(ChaosTest, DroppedCompletionWakeDelaysButNeverLosesTheResult) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("wake");
  NufftServer server(sc);
  server.start();

  NufftClient client;
  client.connect(sc.socket_path, "wake-tenant");
  const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);

  Nufft direct(fx.g, fx.set, fx.cfg);
  std::vector<cfloat> want(static_cast<std::size_t>(fx.set.count()));
  direct.forward(fx.image.data(), want.data());

  fault::arm("serve.complete.drop_wake", 1);
  const auto res = client.forward(plan_id, fx.image);
  EXPECT_EQ(fault::fired("serve.complete.drop_wake"), 1u);
  ASSERT_EQ(res.output.size(), want.size());
  EXPECT_EQ(std::memcmp(res.output.data(), want.data(), want.size() * sizeof(cfloat)), 0);
  EXPECT_EQ(server.stats().completed, 1u);
  server.stop();
}

// The exactly-once contract under a mid-flight reconnect: the client dies
// while its request executes, reconnects under the same identity, and
// resubmits — the live job is re-homed to the new connection instead of
// running twice.
TEST_F(ChaosTest, InFlightWorkIsReboundAcrossReconnectExactlyOnce) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("rebind");
  sc.engine.workers = 1;
  NufftServer server(sc);
  server.start();

  NufftClient anchor;  // keeps the tenant alive across the raw reconnect
  anchor.connect(sc.socket_path, "rebind-tenant");
  const auto plan_id = anchor.register_plan(fx.g, fx.set, fx.cfg);

  Nufft direct(fx.g, fx.set, fx.cfg);
  std::vector<cfloat> want(static_cast<std::size_t>(fx.set.count()));
  direct.forward(fx.image.data(), want.data());

  HelloMsg hello;
  hello.tenant = "rebind-tenant";
  hello.client_id = 77;
  SubmitMsg sub;
  sub.plan_id = plan_id;
  sub.op = WireOp::kForward;
  sub.batch = 1;
  sub.input.assign(fx.image.begin(), fx.image.end());
  Bytes submit_frame;
  encode_frame(submit_frame, MsgType::kSubmit, 9, encode(sub));

  // Wedge the apply long enough for the crash-and-resubmit to happen while
  // the first execution is still in flight.
  fault::arm("engine.apply.stall", 1, 0, /*stall ms=*/500);

  {
    const int fd = raw_connect(sc.socket_path);
    Bytes wire;
    encode_frame(wire, MsgType::kHello, 1, encode(hello));
    wire.insert(wire.end(), submit_frame.begin(), submit_frame.end());
    ASSERT_TRUE(write_some(fd, wire));
    (void)read_frames(fd, 1);  // HelloAck; then "crash" without reading more
    ::close(fd);
  }

  const int fd = raw_connect(sc.socket_path);
  Bytes wire;
  encode_frame(wire, MsgType::kHello, 2, encode(hello));
  wire.insert(wire.end(), submit_frame.begin(), submit_frame.end());
  ASSERT_TRUE(write_some(fd, wire));
  const auto frames = read_frames(fd, 2);
  ::close(fd);

  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kHelloAck);
  ASSERT_EQ(frames[1].type, MsgType::kResult);
  EXPECT_EQ(frames[1].request_id, 9u);
  const ResultMsg r = decode_result(frames[1].body);
  ASSERT_EQ(r.output.size(), want.size());
  EXPECT_EQ(std::memcmp(r.output.data(), want.data(), want.size() * sizeof(cfloat)), 0);

  const auto st = server.stats();
  EXPECT_EQ(st.completed, 1u);  // exactly one execution, never two
  // Raced against the stall: almost always a live rebind, but if the first
  // execution finished before the resubmission arrived it is a cache replay.
  EXPECT_EQ(st.rebinds + st.replays, 1u);
  server.stop();
}

// A small randomized soak across the non-destructive serve sites: with
// probabilistic admission/dispatch/wake faults armed, every request must
// reach exactly one outcome and the server's books must balance.
TEST_F(ChaosTest, MixedFaultSoakKeepsAccountingExact) {
  Fixture fx = make_fixture();
  ServeConfig sc;
  sc.socket_path = unique_socket_path("soak");
  sc.engine.workers = 2;
  NufftServer server(sc);
  server.start();

  fault::arm_prob("serve.admission", 0.15, /*budget=*/6);
  fault::arm_prob("serve.dispatch", 0.15, /*budget=*/6);
  fault::arm_prob("serve.complete.drop_wake", 0.25, /*budget=*/6);

  constexpr int kThreads = 2;
  constexpr int kReqs = 25;
  std::atomic<int> ok{0}, rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      NufftClient client;
      client.connect(sc.socket_path, "soak-" + std::to_string(t));
      const auto plan_id = client.register_plan(fx.g, fx.set, fx.cfg);
      for (int i = 0; i < kReqs; ++i) {
        try {
          const auto res = client.forward(plan_id, fx.image);
          if (res.output.size() == static_cast<std::size_t>(fx.set.count())) ++ok;
        } catch (const Error& e) {
          EXPECT_TRUE(is_retryable(e.code())) << error_code_name(e.code());
          ++rejected;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto st = server.stats();
  EXPECT_EQ(ok.load() + rejected.load(), kThreads * kReqs);
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(st.accepted, st.completed + st.failed);
  EXPECT_EQ(st.shed_overload + st.failed, static_cast<std::uint64_t>(rejected.load()));
  EXPECT_GT(st.completed, 0u);
  server.stop();
}

}  // namespace
}  // namespace nufft::serve
