// Tests for the priority-queue TDG scheduler and selective privatization:
// every task runs exactly once, dependency order is respected, conflicting
// tasks never overlap in time, privatization phases are ordered, and the
// color-barrier baseline executes the same set.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "parallel/scheduler.hpp"

namespace nufft {
namespace {

PartitionLayout uniform_layout(int dim, const std::array<int, 3>& parts, index_t width) {
  PartitionLayout layout;
  layout.dim = dim;
  layout.num_parts = parts;
  for (int d = 0; d < dim; ++d) {
    auto& b = layout.bounds[static_cast<std::size_t>(d)];
    for (int p = 0; p <= parts[static_cast<std::size_t>(d)]; ++p) {
      b.push_back(static_cast<index_t>(p) * width);
    }
  }
  return layout;
}

struct Harness {
  PartitionLayout layout;
  TaskGraph graph;
  std::vector<index_t> weights;
  std::vector<char> privatized;

  Harness(int dim, std::array<int, 3> parts, std::uint64_t seed, double privatize_frac = 0.0)
      : layout(uniform_layout(dim, parts, 16)), graph(layout) {
    Rng rng(seed);
    const int n = graph.size();
    weights.resize(static_cast<std::size_t>(n));
    privatized.assign(static_cast<std::size_t>(n), 0);
    for (int t = 0; t < n; ++t) {
      weights[static_cast<std::size_t>(t)] = static_cast<index_t>(rng.below(1000)) + 1;
      if (rng.uniform() < privatize_frac) privatized[static_cast<std::size_t>(t)] = 1;
    }
  }
};

TEST(Scheduler, EveryTaskRunsExactlyOnce) {
  Harness h(3, {4, 4, 4}, 1);
  ThreadPool pool(8);
  std::vector<std::atomic<int>> runs(static_cast<std::size_t>(h.graph.size()));
  for (auto& r : runs) r.store(0);
  run_task_graph(h.graph, h.weights, h.privatized, pool,
                 [&](int t, int, JobPhase phase) {
                   EXPECT_EQ(phase, JobPhase::kConvolve);
                   runs[static_cast<std::size_t>(t)].fetch_add(1);
                 });
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(Scheduler, PrivatizedTasksRunBothPhasesInOrder) {
  Harness h(2, {4, 4, 1}, 2, /*privatize_frac=*/0.5);
  ThreadPool pool(4);
  const int n = h.graph.size();
  std::vector<std::atomic<int>> conv_done(static_cast<std::size_t>(n));
  std::vector<std::atomic<int>> reduce_done(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    conv_done[static_cast<std::size_t>(t)].store(0);
    reduce_done[static_cast<std::size_t>(t)].store(0);
  }
  auto stats = run_task_graph(
      h.graph, h.weights, h.privatized, pool, [&](int t, int, JobPhase phase) {
        if (phase == JobPhase::kPrivateConvolve) {
          EXPECT_TRUE(h.privatized[static_cast<std::size_t>(t)]);
          conv_done[static_cast<std::size_t>(t)].fetch_add(1);
        } else if (phase == JobPhase::kReduce) {
          EXPECT_TRUE(h.privatized[static_cast<std::size_t>(t)]);
          // Reduction must never run before its private convolution.
          EXPECT_EQ(conv_done[static_cast<std::size_t>(t)].load(), 1);
          reduce_done[static_cast<std::size_t>(t)].fetch_add(1);
        } else {
          EXPECT_FALSE(h.privatized[static_cast<std::size_t>(t)]);
          conv_done[static_cast<std::size_t>(t)].fetch_add(1);
        }
      });
  int priv = 0;
  for (int t = 0; t < n; ++t) {
    EXPECT_EQ(conv_done[static_cast<std::size_t>(t)].load(), 1);
    if (h.privatized[static_cast<std::size_t>(t)]) {
      EXPECT_EQ(reduce_done[static_cast<std::size_t>(t)].load(), 1);
      ++priv;
    }
  }
  EXPECT_EQ(stats.privatized_tasks, priv);
}

TEST(Scheduler, PredecessorsCompleteBeforeSuccessorsStart) {
  Harness h(3, {4, 4, 2}, 3);
  ThreadPool pool(8);
  const int n = h.graph.size();
  std::vector<std::atomic<int>> done(static_cast<std::size_t>(n));
  for (auto& d : done) d.store(0);
  run_task_graph(h.graph, h.weights, h.privatized, pool, [&](int t, int, JobPhase) {
    const TaskNode& node = h.graph.node(t);
    for (int i = 0; i < node.num_preds; ++i) {
      EXPECT_EQ(done[static_cast<std::size_t>(node.preds[static_cast<std::size_t>(i)])].load(), 1)
          << "task " << t << " started before its predecessor finished";
    }
    done[static_cast<std::size_t>(t)].store(1);
  });
}

// The fundamental race-freedom property, measured on the recorded trace:
// grid-exclusive jobs of adjacent tasks must never overlap in time.
class SchedulerOverlap
    : public ::testing::TestWithParam<std::tuple<int, std::array<int, 3>, int, bool, double>> {};

TEST_P(SchedulerOverlap, AdjacentGridWorkNeverOverlaps) {
  const auto [dim, parts, threads, priority, priv_frac] = GetParam();
  Harness h(dim, parts, 77, priv_frac);
  ThreadPool pool(threads);
  SchedulerConfig cfg;
  cfg.priority_queue = priority;
  cfg.record_trace = true;
  // Busy-wait a little inside each job so overlaps would be visible.
  auto stats = run_task_graph(h.graph, h.weights, h.privatized, pool,
                              [&](int t, int, JobPhase) {
                                volatile double x = 0;
                                for (int i = 0; i < 2000 + 100 * (t % 7); ++i) x = x + i * 0.5;
                                (void)x;
                              },
                              cfg);
  // Collect grid-exclusive intervals (convolve + reduce; private convolve
  // writes only its own buffer and may overlap with anything).
  struct Interval {
    int task;
    std::uint64_t t0, t1;
  };
  std::vector<Interval> grid_jobs;
  for (const auto& ev : stats.trace) {
    if (ev.phase != JobPhase::kPrivateConvolve) {
      grid_jobs.push_back({ev.task, ev.t0_ns, ev.t1_ns});
    }
  }
  ASSERT_EQ(static_cast<int>(grid_jobs.size()), h.graph.size());
  for (std::size_t a = 0; a < grid_jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < grid_jobs.size(); ++b) {
      if (!h.graph.adjacent(grid_jobs[a].task, grid_jobs[b].task)) continue;
      const bool overlap =
          grid_jobs[a].t0 < grid_jobs[b].t1 && grid_jobs[b].t0 < grid_jobs[a].t1;
      EXPECT_FALSE(overlap) << "adjacent tasks " << grid_jobs[a].task << " and "
                            << grid_jobs[b].task << " ran concurrently";
    }
  }
}

std::string overlap_name(
    const ::testing::TestParamInfo<std::tuple<int, std::array<int, 3>, int, bool, double>>&
        info) {
  const auto& p = std::get<1>(info.param);
  return "d" + std::to_string(std::get<0>(info.param)) + "_" + std::to_string(p[0]) + "x" +
         std::to_string(p[1]) + "x" + std::to_string(p[2]) + "_t" +
         std::to_string(std::get<2>(info.param)) + (std::get<3>(info.param) ? "_pq" : "_fifo") +
         "_pv" + std::to_string(static_cast<int>(std::get<4>(info.param) * 10));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerOverlap,
    ::testing::Values(
        std::make_tuple(2, std::array<int, 3>{4, 4, 1}, 4, true, 0.0),
        std::make_tuple(2, std::array<int, 3>{6, 6, 1}, 8, false, 0.0),
        std::make_tuple(3, std::array<int, 3>{4, 4, 4}, 8, true, 0.3),
        std::make_tuple(3, std::array<int, 3>{2, 4, 6}, 3, true, 0.5),
        std::make_tuple(1, std::array<int, 3>{8, 1, 1}, 4, true, 0.0),
        std::make_tuple(3, std::array<int, 3>{2, 2, 2}, 16, false, 1.0)),
    overlap_name);

TEST(Scheduler, BusyTimeRecordedPerContext) {
  Harness h(2, {4, 4, 1}, 5);
  ThreadPool pool(4);
  auto stats = run_task_graph(h.graph, h.weights, h.privatized, pool, [&](int, int, JobPhase) {
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + i;
    (void)x;
  });
  ASSERT_EQ(stats.busy_ns_per_context.size(), 4u);
  std::uint64_t total = 0;
  for (const auto b : stats.busy_ns_per_context) total += b;
  EXPECT_GT(total, 0u);
}

TEST(Scheduler, EmptyGraphCompletes) {
  PartitionLayout layout;
  layout.dim = 1;
  layout.num_parts = {0, 1, 1};
  layout.bounds[0] = {0};
  TaskGraph graph(layout);
  ThreadPool pool(2);
  std::vector<index_t> weights;
  std::vector<char> priv;
  auto stats = run_task_graph(graph, weights, priv, pool, [](int, int, JobPhase) {});
  EXPECT_EQ(stats.tasks, 0);
}

TEST(ColoredScheduler, RunsEveryTaskOnceWithBarriers) {
  Harness h(3, {4, 4, 4}, 6);
  ThreadPool pool(8);
  const int n = h.graph.size();
  std::vector<std::atomic<int>> runs(static_cast<std::size_t>(n));
  for (auto& r : runs) r.store(0);
  std::atomic<int> current_rank{0};
  auto stats = run_task_graph_colored(h.graph, h.weights, pool, [&](int t, int, JobPhase phase) {
    EXPECT_EQ(phase, JobPhase::kConvolve);
    runs[static_cast<std::size_t>(t)].fetch_add(1);
    // Barrier semantics: the rank can only ever grow while running.
    const int r = h.graph.node(t).gray_rank;
    int expect = current_rank.load();
    while (expect < r && !current_rank.compare_exchange_weak(expect, r)) {
    }
    EXPECT_GE(r, expect <= r ? r : expect);
  });
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  EXPECT_EQ(stats.tasks, n);
}

TEST(ColoredScheduler, NoTaskOfLaterColorRunsBeforeEarlierColorFinishes) {
  Harness h(2, {6, 6, 1}, 8);
  ThreadPool pool(6);
  const int n = h.graph.size();
  std::vector<std::atomic<int>> done_per_rank(8);
  for (auto& d : done_per_rank) d.store(0);
  std::vector<int> total_per_rank(8, 0);
  for (int t = 0; t < n; ++t) total_per_rank[static_cast<std::size_t>(h.graph.node(t).gray_rank)]++;
  run_task_graph_colored(h.graph, h.weights, pool, [&](int t, int, JobPhase) {
    const int r = h.graph.node(t).gray_rank;
    for (int earlier = 0; earlier < r; ++earlier) {
      EXPECT_EQ(done_per_rank[static_cast<std::size_t>(earlier)].load(),
                total_per_rank[static_cast<std::size_t>(earlier)])
          << "rank " << r << " task started before color " << earlier << " drained";
    }
    done_per_rank[static_cast<std::size_t>(r)].fetch_add(1);
  });
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(5);
  const index_t n = 100000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);
  pool.parallel_for(n, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunOnAllUsesAllContexts) {
  ThreadPool pool(6);
  std::vector<std::atomic<int>> seen(6);
  for (auto& s : seen) s.store(0);
  pool.run_on_all([&](int tid) { seen[static_cast<std::size_t>(tid)].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int count = 0;
  pool.run_on_all([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelForTidPassesValidTids) {
  ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.parallel_for_tid(1000, 10, [&](int tid, index_t, index_t) {
    if (tid < 0 || tid >= 4) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](index_t, index_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace nufft
