// Randomized end-to-end property tests: for fuzzed combinations of
// dimension, size, kernel width, trajectory, thread count, and optimization
// flags, the library must preserve its core invariants — adjointness,
// agreement with the sequential reference, and scheduler soundness.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/nufft.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;

struct FuzzCase {
  int dim;
  index_t n;
  double w;
  TrajectoryType type;
  int threads;
  PlanConfig cfg;
  datasets::SampleSet set;
  GridDesc g;
};

FuzzCase draw_case(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase c{};
  c.dim = static_cast<int>(rng.below(3)) + 1;
  const index_t n_choices[] = {10, 16, 24, 32};
  c.n = n_choices[rng.below(4)];
  if (c.dim == 3) c.n = std::min<index_t>(c.n, 16);
  const double w_choices[] = {2.0, 2.5, 3.0, 4.0};
  c.w = w_choices[rng.below(4)];
  const TrajectoryType types[] = {TrajectoryType::kRadial, TrajectoryType::kRandom,
                                  TrajectoryType::kSpiral};
  c.type = types[rng.below(3)];
  c.threads = static_cast<int>(rng.below(8)) + 1;

  c.cfg.threads = c.threads;
  c.cfg.kernel_radius = c.w;
  c.cfg.use_simd = rng.below(2) == 0;
  c.cfg.reorder = rng.below(2) == 0;
  c.cfg.variable_partitions = rng.below(2) == 0;
  c.cfg.priority_queue = rng.below(2) == 0;
  c.cfg.selective_privatization = rng.below(2) == 0;
  c.cfg.privatization_factor = 0.25 + rng.uniform() * 1.5;
  c.cfg.reorder_tile = static_cast<index_t>(rng.below(15)) + 1;
  if (rng.below(4) == 0) c.cfg.partitions_per_dim = static_cast<int>(rng.below(4)) * 2 + 2;

  c.g = make_grid(c.dim, c.n, 2.0);
  c.set = testing::small_trajectory(c.type, c.dim, c.n,
                                    static_cast<index_t>(rng.below(2000)) + 200, seed);
  return c;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, AdjointDotTestHoldsForRandomConfigs) {
  const auto c = draw_case(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Nufft plan(c.g, c.set, c.cfg);

  const cvecf x = testing::random_image(c.g.image_elems(), 100 + GetParam());
  const cvecf y = testing::random_raw(c.set.count(), 200 + GetParam());
  cvecf ax(static_cast<std::size_t>(c.set.count()));
  cvecf aty(static_cast<std::size_t>(c.g.image_elems()));
  plan.forward(x.data(), ax.data());
  plan.adjoint(y.data(), aty.data());

  cdouble lhs(0, 0), rhs(0, 0);
  for (index_t i = 0; i < c.set.count(); ++i) {
    lhs += cdouble(ax[static_cast<std::size_t>(i)].real(), ax[static_cast<std::size_t>(i)].imag()) *
           std::conj(cdouble(y[static_cast<std::size_t>(i)].real(), y[static_cast<std::size_t>(i)].imag()));
  }
  for (index_t i = 0; i < c.g.image_elems(); ++i) {
    rhs += cdouble(x[static_cast<std::size_t>(i)].real(), x[static_cast<std::size_t>(i)].imag()) *
           std::conj(cdouble(aty[static_cast<std::size_t>(i)].real(), aty[static_cast<std::size_t>(i)].imag()));
  }
  ASSERT_GT(std::abs(lhs), 0.0);
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 2e-5)
      << "dim=" << c.dim << " n=" << c.n << " W=" << c.w << " type="
      << datasets::trajectory_name(c.type) << " threads=" << c.threads;
}

TEST_P(Fuzz, ParallelSpreadMatchesSequentialReference) {
  auto c = draw_case(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const cvecf raw = testing::random_raw(c.set.count(), 300 + GetParam());

  // Sequential reference with the same geometric configuration.
  PlanConfig ref_cfg = c.cfg;
  ref_cfg.threads = 1;
  ref_cfg.selective_privatization = false;
  Nufft ref(c.g, c.set, ref_cfg);
  ref.spread(raw.data());
  const cvecf want(ref.grid_data(), ref.grid_data() + c.g.grid_elems());

  Nufft plan(c.g, c.set, c.cfg);
  plan.spread(raw.data());

  // Summation order may differ (privatization, partition count depends on
  // threads): rounding-level agreement required.
  double scale = 0.0;
  for (const auto& v : want) scale = std::max(scale, static_cast<double>(std::abs(v)));
  EXPECT_LT(testing::max_abs_diff(plan.grid_data(), want.data(), c.g.grid_elems()),
            1e-4 * (1.0 + scale))
      << "dim=" << c.dim << " n=" << c.n << " W=" << c.w << " threads=" << c.threads;
}

TEST_P(Fuzz, ForwardThenAdjointKeepsEnergyFinite) {
  auto c = draw_case(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  Nufft plan(c.g, c.set, c.cfg);
  const cvecf x = testing::random_image(c.g.image_elems(), 400 + GetParam());
  cvecf raw(static_cast<std::size_t>(c.set.count()));
  cvecf back(static_cast<std::size_t>(c.g.image_elems()));
  plan.forward(x.data(), raw.data());
  plan.adjoint(raw.data(), back.data());
  for (index_t i = 0; i < c.g.image_elems(); ++i) {
    ASSERT_TRUE(std::isfinite(back[static_cast<std::size_t>(i)].real()));
    ASSERT_TRUE(std::isfinite(back[static_cast<std::size_t>(i)].imag()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 24),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace nufft
