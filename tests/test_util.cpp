#include "test_util.hpp"

#include <cmath>

namespace nufft::testing {

cvecf random_image(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvecf v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = cfloat(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
  }
  return v;
}

cvecf random_raw(index_t n, std::uint64_t seed) { return random_image(n, seed ^ 0xABCDEF); }

double rel_err(const cfloat* a, const cdouble* b, index_t n) {
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const cdouble d = cdouble(a[i].real(), a[i].imag()) - b[i];
    num += std::norm(d);
    den += std::norm(b[i]);
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

double rel_err(const cfloat* a, const cfloat* b, index_t n) {
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const cdouble d = cdouble(a[i].real() - b[i].real(), a[i].imag() - b[i].imag());
    num += std::norm(d);
    den += std::norm(cdouble(b[i].real(), b[i].imag()));
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

double max_abs_diff(const cfloat* a, const cfloat* b, index_t n) {
  double m = 0.0;
  for (index_t i = 0; i < n; ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return m;
}

datasets::SampleSet small_trajectory(datasets::TrajectoryType type, int dim, index_t n,
                                     index_t approx_count, std::uint64_t seed) {
  datasets::TrajectoryParams p;
  p.n = n;
  p.k = std::max<index_t>(4, n / 2);
  p.s = std::max<index_t>(1, approx_count / p.k);
  p.seed = seed;
  return datasets::make_trajectory(type, dim, p);
}

}  // namespace nufft::testing
