// Tests for Gray-code helpers and the task dependency graph (Fig. 6):
// structure, acyclicity, and the transitive-serialization property that
// guarantees mutual exclusion for adjacent tasks.
#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "parallel/gray.hpp"
#include "parallel/task_graph.hpp"

namespace nufft {
namespace {

TEST(Gray, SequenceForTwoBits) {
  EXPECT_EQ(gray_code(0), 0u);
  EXPECT_EQ(gray_code(1), 1u);
  EXPECT_EQ(gray_code(2), 3u);
  EXPECT_EQ(gray_code(3), 2u);
}

TEST(Gray, SequenceForThreeBitsMatchesPaper) {
  // Paper: 000, 001, 011, 010, 110, 111, 101, 100.
  const unsigned expect[8] = {0, 1, 3, 2, 6, 7, 5, 4};
  for (unsigned k = 0; k < 8; ++k) EXPECT_EQ(gray_code(k), expect[k]);
}

TEST(Gray, RankInvertsCode) {
  for (unsigned k = 0; k < 64; ++k) EXPECT_EQ(gray_rank(gray_code(k)), k);
}

TEST(Gray, ConsecutiveCodesDifferInOneBit) {
  for (unsigned k = 1; k < 64; ++k) {
    const unsigned diff = gray_code(k) ^ gray_code(k - 1);
    EXPECT_EQ(diff & (diff - 1), 0u);  // power of two
    EXPECT_EQ(1u << gray_flip_bit(k), diff);
  }
}

PartitionLayout uniform_layout(int dim, const std::array<int, 3>& parts, index_t width) {
  PartitionLayout layout;
  layout.dim = dim;
  layout.num_parts = parts;
  for (int d = 0; d < dim; ++d) {
    auto& b = layout.bounds[static_cast<std::size_t>(d)];
    for (int p = 0; p <= parts[static_cast<std::size_t>(d)]; ++p) {
      b.push_back(static_cast<index_t>(p) * width);
    }
  }
  return layout;
}

class GraphShape : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GraphShape, StructuralInvariants) {
  const auto [dim, p0, p1, p2] = GetParam();
  std::array<int, 3> parts{p0, dim >= 2 ? p1 : 1, dim >= 3 ? p2 : 1};
  const auto layout = uniform_layout(dim, parts, 16);
  const TaskGraph graph(layout);

  ASSERT_EQ(graph.size(), layout.total_parts());

  int roots = 0;
  for (int t = 0; t < graph.size(); ++t) {
    const TaskNode& node = graph.node(t);
    // Edge counts bounded by 2 (the paper's small-TDG property).
    EXPECT_LE(node.num_preds, 2);
    EXPECT_LE(node.num_succs, 2);
    // Rank 0 ⇔ no predecessors.
    if (node.gray_rank == 0) {
      EXPECT_EQ(node.num_preds, 0);
      ++roots;
    } else {
      EXPECT_GT(node.num_preds, 0) << "non-root task " << t << " must have preds";
    }
    // Every edge decreases rank by exactly one and connects adjacent tasks.
    for (int i = 0; i < node.num_preds; ++i) {
      const auto p = node.preds[static_cast<std::size_t>(i)];
      EXPECT_EQ(graph.node(p).gray_rank, node.gray_rank - 1);
      EXPECT_TRUE(graph.adjacent(t, p));
    }
    for (int i = 0; i < node.num_succs; ++i) {
      const auto s = node.succs[static_cast<std::size_t>(i)];
      EXPECT_EQ(graph.node(s).gray_rank, node.gray_rank + 1);
    }
  }
  EXPECT_EQ(roots, static_cast<int>(graph.roots().size()));
  EXPECT_GT(roots, 0);
}

TEST_P(GraphShape, SuccessorAndPredecessorEdgesAreConsistent) {
  const auto [dim, p0, p1, p2] = GetParam();
  std::array<int, 3> parts{p0, dim >= 2 ? p1 : 1, dim >= 3 ? p2 : 1};
  const TaskGraph graph(uniform_layout(dim, parts, 16));
  for (int t = 0; t < graph.size(); ++t) {
    const TaskNode& node = graph.node(t);
    for (int i = 0; i < node.num_preds; ++i) {
      const TaskNode& pred = graph.node(node.preds[static_cast<std::size_t>(i)]);
      bool found = false;
      for (int j = 0; j < pred.num_succs; ++j) {
        found |= pred.succs[static_cast<std::size_t>(j)] == t;
      }
      EXPECT_TRUE(found) << "pred of " << t << " lacks the back edge";
    }
  }
}

TEST_P(GraphShape, AdjacentTasksAreTransitivelyOrdered) {
  // The mutual-exclusion core: for every pair of spatially adjacent tasks,
  // one must be reachable from the other through TDG edges.
  const auto [dim, p0, p1, p2] = GetParam();
  std::array<int, 3> parts{p0, dim >= 2 ? p1 : 1, dim >= 3 ? p2 : 1};
  const TaskGraph graph(uniform_layout(dim, parts, 16));
  const int n = graph.size();
  if (n > 256) GTEST_SKIP() << "reachability check quadratic; covered by smaller shapes";

  // reach[a] = set of nodes reachable from a (forward edges).
  std::vector<std::vector<bool>> reach(static_cast<std::size_t>(n),
                                       std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int a = 0; a < n; ++a) {
    std::queue<int> q;
    q.push(a);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      const TaskNode& node = graph.node(u);
      for (int i = 0; i < node.num_succs; ++i) {
        const int v = node.succs[static_cast<std::size_t>(i)];
        if (!reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(v)]) {
          reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(v)] = true;
          q.push(v);
        }
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!graph.adjacent(a, b)) continue;
      EXPECT_TRUE(reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] ||
                  reach[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)])
          << "adjacent tasks " << a << "," << b << " not serialized";
    }
  }
}

TEST_P(GraphShape, SameTurnTasksAreNeverAdjacent) {
  const auto [dim, p0, p1, p2] = GetParam();
  std::array<int, 3> parts{p0, dim >= 2 ? p1 : 1, dim >= 3 ? p2 : 1};
  const TaskGraph graph(uniform_layout(dim, parts, 16));
  const int n = graph.size();
  if (n > 512) GTEST_SKIP();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (graph.node(a).turn == graph.node(b).turn) {
        EXPECT_FALSE(graph.adjacent(a, b))
            << "same-turn tasks " << a << "," << b << " are adjacent (would race)";
      }
    }
  }
}

std::string shape_name(const ::testing::TestParamInfo<std::tuple<int, int, int, int>>& info) {
  return "d" + std::to_string(std::get<0>(info.param)) + "_" +
         std::to_string(std::get<1>(info.param)) + "x" + std::to_string(std::get<2>(info.param)) +
         "x" + std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphShape,
    ::testing::Values(std::make_tuple(1, 2, 1, 1), std::make_tuple(1, 8, 1, 1),
                      std::make_tuple(2, 2, 2, 1), std::make_tuple(2, 4, 6, 1),
                      std::make_tuple(2, 1, 8, 1), std::make_tuple(2, 2, 12, 1),
                      std::make_tuple(3, 2, 2, 2), std::make_tuple(3, 4, 4, 4),
                      std::make_tuple(3, 2, 4, 6), std::make_tuple(3, 1, 4, 4),
                      std::make_tuple(3, 1, 1, 6), std::make_tuple(3, 6, 6, 6)),
    shape_name);

TEST(TaskGraph, SinglePartitionIsLoneRoot) {
  const TaskGraph graph(uniform_layout(3, {1, 1, 1}, 32));
  EXPECT_EQ(graph.size(), 1);
  EXPECT_EQ(graph.node(0).num_preds, 0);
  EXPECT_EQ(graph.node(0).num_succs, 0);
  EXPECT_EQ(graph.roots().size(), 1u);
}

TEST(TaskGraph, TwoPartitionsChainAcrossWrap) {
  // Two partitions along one dim: the odd one depends on the even one, with
  // the ±1 neighbours coinciding through the periodic wrap.
  const TaskGraph graph(uniform_layout(1, {2, 1, 1}, 16));
  ASSERT_EQ(graph.size(), 2);
  EXPECT_EQ(graph.node(0).gray_rank, 0);
  EXPECT_EQ(graph.node(1).gray_rank, 1);
  EXPECT_EQ(graph.node(1).num_preds, 1);  // deduplicated wrap neighbour
  EXPECT_EQ(graph.node(1).preds[0], 0);
}

}  // namespace
}  // namespace nufft
